//! A small, versioned, CRC-checked binary format for persisting filters.
//!
//! Layout of a blob produced by [`Writer`]:
//!
//! ```text
//! +----------+---------+---------+----------------+---------+
//! | magic u32| ver u16 | kind u16| body bytes ... | crc u32 |
//! +----------+---------+---------+----------------+---------+
//! ```
//!
//! All integers are little-endian. The CRC-32 covers magic, version, kind and
//! body. Each structure (ShBF_M, BF, …) registers its own `kind` tag and
//! encodes parameters + arrays into the body; [`Reader`] verifies magic,
//! version, kind and CRC before any field is interpreted, so a corrupted or
//! truncated blob is rejected instead of yielding a silently wrong filter.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::bitarray::BitArray;
use crate::counters::CounterArray;
use crate::crc::crc32;

/// Magic bytes `"SHBF"` as a little-endian u32.
pub const MAGIC: u32 = u32::from_le_bytes(*b"SHBF");
/// Current format version.
pub const VERSION: u16 = 1;

/// Errors from decoding a serialized blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The blob does not start with the `SHBF` magic.
    BadMagic(u32),
    /// The format version is unsupported.
    BadVersion(u16),
    /// The blob encodes a different structure kind than requested.
    WrongKind {
        /// Kind tag found in the blob.
        found: u16,
        /// Kind tag the caller expected.
        expected: u16,
    },
    /// The CRC-32 did not match — the blob is corrupt or truncated.
    ChecksumMismatch {
        /// Checksum stored in the blob.
        stored: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
    /// The blob ended before a field could be read.
    UnexpectedEof,
    /// A decoded field had an invalid value.
    InvalidField(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic(m) => write!(f, "bad magic {m:#010x}, expected SHBF"),
            CodecError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            CodecError::WrongKind { found, expected } => {
                write!(
                    f,
                    "blob kind {found} does not match expected kind {expected}"
                )
            }
            CodecError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            CodecError::UnexpectedEof => write!(f, "unexpected end of blob"),
            CodecError::InvalidField(name) => write!(f, "invalid field: {name}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serializer for one blob.
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Starts a blob of the given structure `kind`.
    pub fn new(kind: u16) -> Self {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u16_le(kind);
        Writer { buf }
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }

    /// Appends a `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.put_u16_le(v);
        self
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32_le(v);
        self
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64_le(v);
        self
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.put_u64_le(v.len() as u64);
        self.buf.put_slice(v);
        self
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn words(&mut self, v: &[u64]) -> &mut Self {
        self.buf.put_u64_le(v.len() as u64);
        for &w in v {
            self.buf.put_u64_le(w);
        }
        self
    }

    /// Appends a [`BitArray`] (bit length + words).
    pub fn bit_array(&mut self, b: &BitArray) -> &mut Self {
        self.buf.put_u64_le(b.len() as u64);
        self.words(b.as_words())
    }

    /// Appends a [`CounterArray`] (len, width, words).
    pub fn counter_array(&mut self, c: &CounterArray) -> &mut Self {
        self.buf.put_u64_le(c.len() as u64);
        self.buf.put_u32_le(c.width());
        self.words(c.as_words())
    }

    /// Appends the CRC footer and returns the finished blob.
    pub fn finish(self) -> Bytes {
        let mut buf = self.buf;
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        buf.freeze()
    }
}

/// Deserializer for one blob.
#[derive(Debug)]
pub struct Reader<'a> {
    body: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Validates magic, version, kind and CRC, and positions the reader at
    /// the start of the body.
    pub fn new(blob: &'a [u8], expected_kind: u16) -> Result<Self, CodecError> {
        if blob.len() < 8 + 4 {
            return Err(CodecError::UnexpectedEof);
        }
        let (payload, crc_bytes) = blob.split_at(blob.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        let computed = crc32(payload);
        if stored != computed {
            return Err(CodecError::ChecksumMismatch { stored, computed });
        }
        let mut header = payload;
        let magic = header.get_u32_le();
        if magic != MAGIC {
            return Err(CodecError::BadMagic(magic));
        }
        let version = header.get_u16_le();
        if version != VERSION {
            return Err(CodecError::BadVersion(version));
        }
        let kind = header.get_u16_le();
        if kind != expected_kind {
            return Err(CodecError::WrongKind {
                found: kind,
                expected: expected_kind,
            });
        }
        Ok(Reader { body: header })
    }

    fn need(&self, n: usize) -> Result<(), CodecError> {
        if self.body.len() < n {
            Err(CodecError::UnexpectedEof)
        } else {
            Ok(())
        }
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        self.need(1)?;
        Ok(self.body.get_u8())
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        self.need(2)?;
        Ok(self.body.get_u16_le())
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        self.need(4)?;
        Ok(self.body.get_u32_le())
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        self.need(8)?;
        Ok(self.body.get_u64_le())
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.u64()? as usize;
        self.need(len)?;
        let out = self.body[..len].to_vec();
        self.body.advance(len);
        Ok(out)
    }

    /// Reads a length-prefixed `u64` slice.
    pub fn words(&mut self) -> Result<Vec<u64>, CodecError> {
        let len = self.u64()? as usize;
        self.need(
            len.checked_mul(8)
                .ok_or(CodecError::InvalidField("words len"))?,
        )?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.body.get_u64_le());
        }
        Ok(out)
    }

    /// Reads a [`BitArray`].
    pub fn bit_array(&mut self) -> Result<BitArray, CodecError> {
        let len_bits = self.u64()? as usize;
        let words = self.words()?;
        if words.len() != len_bits.div_ceil(64) {
            return Err(CodecError::InvalidField("bit array word count"));
        }
        if !len_bits.is_multiple_of(64) {
            if let Some(last) = words.last() {
                if last >> (len_bits % 64) != 0 {
                    return Err(CodecError::InvalidField("bit array dirty tail"));
                }
            }
        }
        Ok(BitArray::from_words(words, len_bits))
    }

    /// Reads a [`CounterArray`].
    pub fn counter_array(&mut self) -> Result<CounterArray, CodecError> {
        let len = self.u64()? as usize;
        let width = self.u32()?;
        if !(1..=32).contains(&width) {
            return Err(CodecError::InvalidField("counter width"));
        }
        let words = self.words()?;
        if words.len() != (len * width as usize).div_ceil(64) {
            return Err(CodecError::InvalidField("counter array word count"));
        }
        Ok(CounterArray::from_words(words, len, width))
    }

    /// Ensures the body has been fully consumed.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.body.is_empty() {
            Ok(())
        } else {
            Err(CodecError::InvalidField("trailing bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = Writer::new(7);
        w.u8(1).u16(2).u32(3).u64(4).bytes(b"hello");
        let blob = w.finish();
        let mut r = Reader::new(&blob, 7).unwrap();
        assert_eq!(r.u8().unwrap(), 1);
        assert_eq!(r.u16().unwrap(), 2);
        assert_eq!(r.u32().unwrap(), 3);
        assert_eq!(r.u64().unwrap(), 4);
        assert_eq!(r.bytes().unwrap(), b"hello");
        r.expect_end().unwrap();
    }

    #[test]
    fn bit_array_roundtrip() {
        let mut b = BitArray::new(1000);
        b.set(0);
        b.set(999);
        b.set(333);
        let mut w = Writer::new(1);
        w.bit_array(&b);
        let blob = w.finish();
        let mut r = Reader::new(&blob, 1).unwrap();
        let back = r.bit_array().unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn counter_array_roundtrip() {
        let mut c = CounterArray::new(77, 6);
        c.set(0, 63);
        c.set(76, 1);
        let mut w = Writer::new(2);
        w.counter_array(&c);
        let blob = w.finish();
        let mut r = Reader::new(&blob, 2).unwrap();
        let back = r.counter_array().unwrap();
        assert_eq!(back.get(0), 63);
        assert_eq!(back.get(76), 1);
        assert_eq!(back.len(), 77);
        assert_eq!(back.width(), 6);
    }

    #[test]
    fn corruption_is_detected() {
        let mut w = Writer::new(3);
        w.u64(0xDEAD_BEEF);
        let blob = w.finish();
        for i in 0..blob.len() {
            let mut bad = blob.to_vec();
            bad[i] ^= 0x40;
            let err = Reader::new(&bad, 3).unwrap_err();
            assert!(
                matches!(
                    err,
                    CodecError::ChecksumMismatch { .. }
                        | CodecError::BadMagic(_)
                        | CodecError::BadVersion(_)
                ),
                "byte {i}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = Writer::new(3);
        w.u64(1).u64(2).u64(3);
        let blob = w.finish();
        for cut in 0..blob.len() {
            assert!(
                Reader::new(&blob[..cut], 3).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn wrong_kind_rejected() {
        let blob = Writer::new(5).finish();
        assert_eq!(
            Reader::new(&blob, 6).unwrap_err(),
            CodecError::WrongKind {
                found: 5,
                expected: 6
            }
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = Writer::new(5);
        w.u64(1);
        let blob = w.finish();
        let mut r = Reader::new(&blob, 5).unwrap();
        assert!(r.expect_end().is_err());
        r.u64().unwrap();
        assert!(r.expect_end().is_ok());
    }
}
