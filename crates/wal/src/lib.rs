//! # shbf-wal — durable append-only op-log for the set-query daemon
//!
//! A write-ahead log of opaque payloads (the server logs its mutation
//! command lines), built for the snapshot + log-truncate recovery model:
//! the server periodically persists a whole-registry snapshot at sequence
//! number `S`, then drops every log segment whose records are all `<= S`.
//! On boot it loads the newest valid snapshot and replays the log tail.
//!
//! ## On-disk format
//!
//! A log is a directory of **sequence-numbered segment files** named
//! `wal-<first_seq>.log` (zero-padded so lexical order is numeric order).
//! Each segment is:
//!
//! ```text
//! header:  magic "SWAL" u32 | version u16 | reserved u16 | first_seq u64
//! records: len u32 | crc u32 | seq u64 | payload[len]      (repeated)
//! ```
//!
//! All integers are little-endian. The CRC-32 (IEEE, the same
//! [`shbf_bits::crc::crc32`] that guards the filter codec) covers `seq` and
//! `payload`, so a torn write, truncation, or bit flip in any record is
//! detected before the payload is trusted. Sequence numbers are assigned
//! by the log, start at `base + 1`, and are contiguous across segments.
//!
//! ## Recovery semantics
//!
//! * The **newest** segment may end in a torn record (the crash window is
//!   one in-flight append): [`Wal::open`] scans it, truncates the file at
//!   the last valid record, and resumes appending from there. A
//!   CRC-corrupt record likewise ends the log — nothing after it can be
//!   trusted, so it and any bytes beyond are dropped.
//! * A **sealed** (non-newest) segment with an invalid record is a hard
//!   [`WalError::Corrupt`]: replay cannot silently skip a hole in the
//!   middle of history.
//!
//! ## Fsync policy
//!
//! [`FsyncPolicy`] trades durability for append latency, Redis-style:
//! `Always` fsyncs every record before the append returns (an
//! acknowledged mutation survives power loss), `EverySec` fsyncs at most
//! once per second (bounded loss window, near-`No` throughput), `No`
//! leaves flushing to the OS.
//!
//! The log itself is single-writer and not internally synchronized — the
//! server wraps it in a mutex that also orders mutations, so a snapshot
//! taken under that lock is consistent with a log position.
//!
//! ## Failpoints
//!
//! Three `shbf-failpoint` sites let chaos tests inject I/O faults (a
//! fired site surfaces as [`WalError::Io`], exactly like the real
//! failure it stands in for):
//!
//! | Site | Injected failure | Real-world analogue |
//! |---|---|---|
//! | `wal::append` | record write fails before any byte lands | `ENOSPC`/`EIO` on `write` |
//! | `wal::fsync` | flush fails with records still dirty | `EIO` on `fdatasync` |
//! | `wal::rotate` | new segment cannot be created | disk full at segment boundary |
//!
//! With no failpoint armed each site is a single relaxed atomic load.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use shbf_bits::crc::crc32;
use shbf_metrics::{Counter, Histogram};

/// Segment header magic, `"SWAL"` little-endian.
pub const MAGIC: u32 = u32::from_le_bytes(*b"SWAL");
/// Segment format version.
pub const VERSION: u16 = 1;
/// Segment header length in bytes.
pub const HEADER_LEN: u64 = 16;
/// Per-record framing overhead in bytes (`len`, `crc`, `seq`).
pub const RECORD_HEADER_LEN: u64 = 16;
/// Largest accepted payload — a scan treats a bigger `len` as corruption
/// instead of allocating from a garbage length field.
pub const MAX_PAYLOAD: usize = 16 << 20;

/// When appends are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` before every append returns: an acknowledged write
    /// survives power loss. Slowest.
    Always,
    /// `fsync` at most once per second, checked on append: at most ~1s
    /// of acknowledged writes can be lost. Appends alone only flush on
    /// the *next* append, so callers wanting the ~1s bound to hold
    /// across write pauses should also drive [`Wal::sync`] from a timer
    /// (the server runs a background flusher). The production default.
    #[default]
    EverySec,
    /// Never `fsync`; the OS flushes when it pleases. Fastest, loses up
    /// to the page-cache window on power loss (not on process crash).
    No,
}

impl FsyncPolicy {
    /// Wire/CLI name (`always` / `everysec` / `no`).
    pub fn name(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::EverySec => "everysec",
            FsyncPolicy::No => "no",
        }
    }
}

impl std::str::FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "everysec" => Ok(FsyncPolicy::EverySec),
            "no" | "never" => Ok(FsyncPolicy::No),
            other => Err(format!(
                "unknown fsync policy `{other}` (always | everysec | no)"
            )),
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Tunables for [`Wal::open`].
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding the segment files (created if absent).
    pub dir: PathBuf,
    /// Flush policy for appends.
    pub fsync: FsyncPolicy,
    /// Rotate to a new segment once the active one exceeds this many
    /// bytes. Rotation bounds how much log a snapshot can't truncate.
    pub segment_bytes: u64,
}

impl WalConfig {
    /// Config with default policy (`everysec`) and 8 MiB segments.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::default(),
            segment_bytes: 8 << 20,
        }
    }
}

/// Failures from opening, appending to, or scanning a log.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// An invalid record in a sealed segment (or an unreadable header):
    /// history has a hole that recovery must not paper over.
    Corrupt {
        /// Segment file the corruption was found in.
        segment: PathBuf,
        /// Byte offset of the bad record (or header).
        offset: u64,
        /// What check failed.
        reason: &'static str,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io: {e}"),
            WalError::Corrupt {
                segment,
                offset,
                reason,
            } => write!(
                f,
                "wal corrupt: {} at byte {offset}: {reason}",
                segment.display()
            ),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Hot-path instrumentation for one log, shared (via `Arc`) between the
/// log's owner and whatever renders metrics. Counters and histograms are
/// relaxed atomics, so recording adds no locking to the append path.
#[derive(Debug, Default)]
pub struct WalMetrics {
    /// Full append latency in nanoseconds (buffer build + write + any
    /// policy-driven fsync).
    pub append_ns: Histogram,
    /// `fdatasync` latency in nanoseconds (only syncs that actually hit
    /// the disk — clean no-op [`Wal::sync`] calls are not recorded).
    pub fsync_ns: Histogram,
    /// Completed segment rotations (empty-segment no-ops excluded).
    pub rotations: Counter,
    /// [`Wal::truncate_through`] calls that removed at least one segment.
    pub truncations: Counter,
    /// Segment files deleted by truncation.
    pub segments_removed: Counter,
}

/// One segment file: its path and the sequence number of its first record.
#[derive(Debug, Clone)]
struct SegmentInfo {
    first_seq: u64,
    path: PathBuf,
}

fn segment_path(dir: &Path, first_seq: u64) -> PathBuf {
    dir.join(format!("wal-{first_seq:020}.log"))
}

fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// Outcome of scanning one segment.
struct SegmentScan {
    /// Records that validated, in order.
    count: u64,
    /// Byte offset just past the last valid record.
    valid_len: u64,
}

/// The append-only log: an active segment plus its sealed predecessors.
pub struct Wal {
    dir: PathBuf,
    fsync: FsyncPolicy,
    segment_bytes: u64,
    /// All live segments, ascending by `first_seq`; the last is active.
    segments: Vec<SegmentInfo>,
    /// Write handle on the active segment, positioned at its end.
    active: File,
    active_len: u64,
    next_seq: u64,
    last_sync: Instant,
    dirty: bool,
    metrics: Arc<WalMetrics>,
}

impl Wal {
    /// Opens (or creates) the log in `config.dir`. `base_seq` is the
    /// sequence number recovery already holds from a snapshot — a brand
    /// new log starts numbering at `base_seq + 1`. The newest segment's
    /// torn tail, if any, is truncated here.
    pub fn open(config: &WalConfig, base_seq: u64) -> Result<Wal, WalError> {
        fs::create_dir_all(&config.dir)?;
        let mut segments: Vec<SegmentInfo> = Vec::new();
        for entry in fs::read_dir(&config.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            if let Some(first_seq) = name.to_str().and_then(parse_segment_name) {
                segments.push(SegmentInfo {
                    first_seq,
                    path: entry.path(),
                });
            }
        }
        segments.sort_by_key(|s| s.first_seq);

        if segments.is_empty() {
            let first_seq = base_seq + 1;
            let path = segment_path(&config.dir, first_seq);
            let active = create_segment(&path, first_seq)?;
            fsync_dir(&config.dir);
            return Ok(Wal {
                dir: config.dir.clone(),
                fsync: config.fsync,
                segment_bytes: config.segment_bytes,
                segments: vec![SegmentInfo { first_seq, path }],
                active,
                active_len: HEADER_LEN,
                next_seq: first_seq,
                last_sync: Instant::now(),
                dirty: false,
                metrics: Arc::new(WalMetrics::default()),
            });
        }

        // Scan the newest segment and truncate its torn/corrupt tail; the
        // crash window is one in-flight append, so only this file may end
        // mid-record.
        let tail = segments.last().unwrap().clone();
        let scan = scan_segment(&tail.path, tail.first_seq, true, |_, _| {})?;
        let next_seq = tail.first_seq + scan.count;
        let file_len = fs::metadata(&tail.path)?.len();
        let mut active = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&tail.path)?;
        if file_len > scan.valid_len {
            active.set_len(scan.valid_len)?;
            active.sync_data()?;
        }
        // `append` mode positions writes at EOF after the truncation.
        let _ = &mut active;
        Ok(Wal {
            dir: config.dir.clone(),
            fsync: config.fsync,
            segment_bytes: config.segment_bytes,
            segments,
            active,
            active_len: scan.valid_len,
            next_seq,
            last_sync: Instant::now(),
            dirty: false,
            metrics: Arc::new(WalMetrics::default()),
        })
    }

    /// Shared handle to this log's instrumentation (for a `/metrics`
    /// renderer living outside the lock that orders appends).
    pub fn metrics(&self) -> Arc<WalMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Sequence number the next append will be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Sequence number of the last appended record (`next_seq - 1`); with
    /// an empty log this is the base the log was opened at.
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Smallest sequence number still on disk. Records older than this
    /// have been truncated away behind a snapshot; a reader wanting
    /// history from before `oldest_seq` needs the snapshot instead.
    pub fn oldest_seq(&self) -> u64 {
        self.segments[0].first_seq
    }

    /// Number of live segment files (tests and `STATS`).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Appends one payload, returning its assigned sequence number. The
    /// record is on stable storage when this returns iff the policy is
    /// [`FsyncPolicy::Always`].
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, WalError> {
        if payload.len() > MAX_PAYLOAD {
            return Err(WalError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("wal payload exceeds {MAX_PAYLOAD} bytes"),
            )));
        }
        if self.active_len >= self.segment_bytes {
            self.rotate()?;
        }
        if let Some(msg) = shbf_failpoint::fail("wal::append") {
            return Err(WalError::Io(std::io::Error::other(msg)));
        }
        let span = shbf_trace::span("wal_append");
        let started = Instant::now();
        let seq = self.next_seq;
        span.attr("seq", seq);
        span.attr("bytes", payload.len());
        let mut buf = Vec::with_capacity(RECORD_HEADER_LEN as usize + payload.len());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let mut crc = shbf_bits::crc::Crc32::new();
        crc.update(&seq.to_le_bytes());
        crc.update(payload);
        buf.extend_from_slice(&crc.finish().to_le_bytes());
        buf.extend_from_slice(&seq.to_le_bytes());
        buf.extend_from_slice(payload);
        self.active.write_all(&buf)?;
        self.active_len += buf.len() as u64;
        self.next_seq += 1;
        self.dirty = true;
        match self.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EverySec => {
                if self.last_sync.elapsed() >= Duration::from_secs(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::No => {}
        }
        self.metrics
            .append_ns
            .record(started.elapsed().as_nanos() as u64);
        Ok(seq)
    }

    /// Flushes appended records to stable storage now, regardless of
    /// policy. No-op when nothing is pending.
    pub fn sync(&mut self) -> Result<(), WalError> {
        if self.dirty {
            // Fired only with records still unflushed, mirroring a real
            // fsync error: the data's durability is now unknown.
            if let Some(msg) = shbf_failpoint::fail("wal::fsync") {
                return Err(WalError::Io(std::io::Error::other(msg)));
            }
            let _span = shbf_trace::span("wal_fsync");
            let started = Instant::now();
            self.active.sync_data()?;
            self.metrics
                .fsync_ns
                .record(started.elapsed().as_nanos() as u64);
            self.dirty = false;
        }
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Seals the active segment and starts a new one at `next_seq`. Called
    /// automatically past `segment_bytes`, and by the snapshot path so
    /// [`Self::truncate_through`] can drop everything before the snapshot.
    ///
    /// A no-op when the active segment holds no records: it is already
    /// the post-rotation state, and rotating anyway would register a
    /// second [`SegmentInfo`] for the same `wal-<next_seq>.log` path —
    /// [`Self::truncate_through`] would then see the duplicate as fully
    /// covered and unlink the file the live write handle points at,
    /// silently losing every later append across a restart.
    pub fn rotate(&mut self) -> Result<(), WalError> {
        if self.active_len == HEADER_LEN {
            return Ok(());
        }
        if self.fsync != FsyncPolicy::No {
            self.sync()?;
        }
        let first_seq = self.next_seq;
        let path = segment_path(&self.dir, first_seq);
        if let Some(msg) = shbf_failpoint::fail("wal::rotate") {
            return Err(WalError::Io(std::io::Error::other(msg)));
        }
        self.active = create_segment(&path, first_seq)?;
        self.active_len = HEADER_LEN;
        self.segments.push(SegmentInfo { first_seq, path });
        fsync_dir(&self.dir);
        self.dirty = false;
        self.metrics.rotations.inc();
        Ok(())
    }

    /// Deletes sealed segments whose records are **all** `<= seq` (the
    /// snapshot already covers them). The active segment is never removed.
    pub fn truncate_through(&mut self, seq: u64) -> Result<(), WalError> {
        // Defense in depth against bookkeeping bugs (e.g. a duplicate
        // entry for the active path): never unlink the file the active
        // write handle points at, whatever the coverage math says.
        let active_path = self.segments.last().map(|s| s.path.clone());
        let mut keep = Vec::with_capacity(self.segments.len());
        let mut removed = 0u64;
        for i in 0..self.segments.len() {
            let fully_covered = match self.segments.get(i + 1) {
                // A sealed segment ends where its successor begins.
                Some(next) => next.first_seq <= seq + 1,
                None => false, // the active segment stays
            };
            if fully_covered && Some(&self.segments[i].path) != active_path.as_ref() {
                fs::remove_file(&self.segments[i].path)?;
                removed += 1;
            } else {
                keep.push(self.segments[i].clone());
            }
        }
        self.segments = keep;
        fsync_dir(&self.dir);
        if removed > 0 {
            self.metrics.truncations.inc();
            self.metrics.segments_removed.add(removed);
        }
        Ok(())
    }

    /// Visits up to `max` records with sequence numbers `> after`, in
    /// order, as `(seq, payload)`. Returns how many were visited. Reads go
    /// through fresh read-only handles, so a scan can run while the log
    /// holds its append handle (the server calls this under the same lock
    /// that orders appends).
    pub fn scan_after(
        &self,
        after: u64,
        max: usize,
        mut f: impl FnMut(u64, &[u8]),
    ) -> Result<usize, WalError> {
        let mut visited = 0usize;
        let last = self.segments.len().saturating_sub(1);
        for (i, seg) in self.segments.iter().enumerate() {
            // Skip segments that end before `after`.
            if let Some(next) = self.segments.get(i + 1) {
                if next.first_seq <= after + 1 {
                    continue;
                }
            }
            if visited >= max {
                break;
            }
            scan_segment(&seg.path, seg.first_seq, i == last, |seq, payload| {
                if seq > after && visited < max {
                    f(seq, payload);
                    visited += 1;
                }
            })?;
        }
        Ok(visited)
    }
}

fn create_segment(path: &Path, first_seq: u64) -> Result<File, WalError> {
    let mut file = OpenOptions::new()
        .create(true)
        .truncate(true)
        .read(true)
        .write(true)
        .open(path)?;
    let mut header = Vec::with_capacity(HEADER_LEN as usize);
    header.extend_from_slice(&MAGIC.to_le_bytes());
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.extend_from_slice(&0u16.to_le_bytes());
    header.extend_from_slice(&first_seq.to_le_bytes());
    file.write_all(&header)?;
    file.sync_data()?;
    Ok(file)
}

/// Fsyncs a directory so renames/creates/unlinks inside it are durable.
/// Best-effort: not every filesystem supports it, and recovery tolerates
/// a lost directory entry (it shows up as a missing newest segment).
fn fsync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

/// Scans one segment, calling `f(seq, payload)` for each valid record.
/// `tolerant` (the newest segment) stops cleanly at the first invalid
/// record; a sealed segment reports it as [`WalError::Corrupt`].
fn scan_segment(
    path: &Path,
    expected_first_seq: u64,
    tolerant: bool,
    mut f: impl FnMut(u64, &[u8]),
) -> Result<SegmentScan, WalError> {
    let corrupt = |offset: u64, reason: &'static str| WalError::Corrupt {
        segment: path.to_path_buf(),
        offset,
        reason,
    };
    let mut file = File::open(path)?;
    let mut data = Vec::new();
    file.read_to_end(&mut data)?;
    if data.len() < HEADER_LEN as usize {
        return Err(corrupt(0, "short segment header"));
    }
    let magic = u32::from_le_bytes(data[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(corrupt(0, "bad segment magic"));
    }
    let version = u16::from_le_bytes(data[4..6].try_into().unwrap());
    if version != VERSION {
        return Err(corrupt(4, "unsupported segment version"));
    }
    let first_seq = u64::from_le_bytes(data[8..16].try_into().unwrap());
    if first_seq != expected_first_seq {
        return Err(corrupt(8, "segment first_seq does not match file name"));
    }

    let mut at = HEADER_LEN as usize;
    let mut count = 0u64;
    loop {
        let rest = &data[at..];
        if rest.is_empty() {
            break;
        }
        let invalid = |reason: &'static str| -> Result<SegmentScan, WalError> {
            if tolerant {
                Ok(SegmentScan {
                    count,
                    valid_len: at as u64,
                })
            } else {
                Err(corrupt(at as u64, reason))
            }
        };
        if rest.len() < RECORD_HEADER_LEN as usize {
            return invalid("torn record header");
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
        if len > MAX_PAYLOAD {
            return invalid("record length exceeds cap");
        }
        let stored_crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        let seq = u64::from_le_bytes(rest[8..16].try_into().unwrap());
        let total = RECORD_HEADER_LEN as usize + len;
        if rest.len() < total {
            return invalid("torn record payload");
        }
        let payload = &rest[RECORD_HEADER_LEN as usize..total];
        if crc32(&rest[8..total]) != stored_crc {
            return invalid("record crc mismatch");
        }
        if seq != first_seq + count {
            return invalid("record sequence gap");
        }
        f(seq, payload);
        count += 1;
        at += total;
    }
    Ok(SegmentScan {
        count,
        valid_len: at as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "shbf-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn config(dir: &Path) -> WalConfig {
        WalConfig {
            dir: dir.to_path_buf(),
            fsync: FsyncPolicy::No,
            segment_bytes: 8 << 20,
        }
    }

    fn collect(wal: &Wal, after: u64) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::new();
        wal.scan_after(after, usize::MAX, |seq, payload| {
            out.push((seq, payload.to_vec()));
        })
        .unwrap();
        out
    }

    #[test]
    fn append_reopen_roundtrip() {
        let dir = temp_dir("roundtrip");
        let mut wal = Wal::open(&config(&dir), 0).unwrap();
        assert_eq!(wal.next_seq(), 1);
        for i in 0..100u64 {
            let seq = wal.append(format!("op-{i}").as_bytes()).unwrap();
            assert_eq!(seq, i + 1);
        }
        wal.sync().unwrap();
        drop(wal);

        let wal = Wal::open(&config(&dir), 0).unwrap();
        assert_eq!(wal.next_seq(), 101);
        assert_eq!(wal.oldest_seq(), 1);
        let records = collect(&wal, 0);
        assert_eq!(records.len(), 100);
        assert_eq!(records[0], (1, b"op-0".to_vec()));
        assert_eq!(records[99], (100, b"op-99".to_vec()));
        // Tail reads start anywhere.
        let tail = collect(&wal, 97);
        assert_eq!(
            tail,
            vec![
                (98, b"op-97".to_vec()),
                (99, b"op-98".to_vec()),
                (100, b"op-99".to_vec())
            ]
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn base_seq_numbers_a_fresh_log() {
        let dir = temp_dir("base");
        let mut wal = Wal::open(&config(&dir), 41).unwrap();
        assert_eq!(wal.next_seq(), 42);
        assert_eq!(wal.last_seq(), 41);
        assert_eq!(wal.append(b"x").unwrap(), 42);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_at_every_cut_point() {
        let dir = temp_dir("torn");
        let mut wal = Wal::open(&config(&dir), 0).unwrap();
        for i in 0..5u64 {
            wal.append(format!("record-{i}").as_bytes()).unwrap();
        }
        wal.sync().unwrap();
        let path = segment_path(&dir, 1);
        let intact = fs::read(&path).unwrap();
        let last_record_at = {
            // 4 intact records; compute offset of the 5th.
            let mut at = HEADER_LEN as usize;
            for _ in 0..4 {
                let len = u32::from_le_bytes(intact[at..at + 4].try_into().unwrap()) as usize;
                at += RECORD_HEADER_LEN as usize + len;
            }
            at
        };
        drop(wal);

        // Cut the file at every byte inside the final record: recovery
        // must keep exactly the first four and resume at seq 5.
        for cut in last_record_at..intact.len() {
            fs::write(&path, &intact[..cut]).unwrap();
            let mut wal = Wal::open(&config(&dir), 0).unwrap();
            assert_eq!(wal.next_seq(), 5, "cut at {cut}");
            let records = collect(&wal, 0);
            assert_eq!(records.len(), 4, "cut at {cut}");
            assert_eq!(records[3], (4, b"record-3".to_vec()));
            // The log keeps working after truncation.
            assert_eq!(wal.append(b"after-recovery").unwrap(), 5);
            let records = collect(&wal, 4);
            assert_eq!(
                records,
                vec![(5, b"after-recovery".to_vec())],
                "cut at {cut}"
            );
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crc_corrupt_trailing_record_is_skipped() {
        let dir = temp_dir("crc");
        let mut wal = Wal::open(&config(&dir), 0).unwrap();
        for i in 0..3u64 {
            wal.append(format!("record-{i}").as_bytes()).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let path = segment_path(&dir, 1);
        let mut data = fs::read(&path).unwrap();
        // Flip a payload bit in the last record.
        let n = data.len();
        data[n - 2] ^= 0x40;
        fs::write(&path, &data).unwrap();

        let wal = Wal::open(&config(&dir), 0).unwrap();
        let records = collect(&wal, 0);
        assert_eq!(records.len(), 2, "corrupt trailing record not dropped");
        assert_eq!(wal.next_seq(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_sealed_segment_is_a_hard_error() {
        let dir = temp_dir("sealed");
        let mut cfg = config(&dir);
        cfg.segment_bytes = 64; // force rotation almost every append
        let mut wal = Wal::open(&cfg, 0).unwrap();
        for i in 0..10u64 {
            wal.append(format!("record-{i:04}").as_bytes()).unwrap();
        }
        assert!(wal.segment_count() > 2, "rotation did not engage");
        drop(wal);
        // Corrupt a record in the FIRST (sealed) segment.
        let path = segment_path(&dir, 1);
        let mut data = fs::read(&path).unwrap();
        let n = data.len();
        data[n - 1] ^= 0x01;
        fs::write(&path, &data).unwrap();

        let wal = Wal::open(&cfg, 0).unwrap(); // open only scans the tail
        let err = wal.scan_after(0, usize::MAX, |_, _| {}).unwrap_err();
        assert!(
            matches!(err, WalError::Corrupt { .. }),
            "sealed corruption must not be skipped: {err}"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_and_truncate_through() {
        let dir = temp_dir("truncate");
        let mut cfg = config(&dir);
        cfg.segment_bytes = 128;
        let mut wal = Wal::open(&cfg, 0).unwrap();
        for i in 0..50u64 {
            wal.append(format!("record-{i:04}").as_bytes()).unwrap();
        }
        let segments_before = wal.segment_count();
        assert!(segments_before > 3);
        assert_eq!(wal.oldest_seq(), 1);

        // Simulate a snapshot at seq 30: roll, then drop covered segments.
        wal.rotate().unwrap();
        wal.truncate_through(30).unwrap();
        assert!(wal.segment_count() < segments_before);
        assert!(wal.oldest_seq() > 1);
        // Every record after 30 survived.
        let records = collect(&wal, 30);
        assert_eq!(records.len(), 20);
        assert_eq!(records[0].0, 31);
        assert_eq!(records[19].0, 50);
        // Reopen agrees.
        drop(wal);
        let wal = Wal::open(&cfg, 30).unwrap();
        assert_eq!(wal.next_seq(), 51);
        assert_eq!(collect(&wal, 30).len(), 20);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotate_on_empty_active_segment_is_a_noop() {
        // Regression: rotating an empty active segment used to push a
        // duplicate SegmentInfo for the same path; truncate_through then
        // unlinked the active write handle's file and every later append
        // vanished on reopen. Trigger: snapshot with no ops since the
        // last rotation (e.g. LOAD right after boot, or twice in a row).
        let dir = temp_dir("empty-rotate");
        let mut wal = Wal::open(&config(&dir), 0).unwrap();
        wal.rotate().unwrap();
        assert_eq!(wal.segment_count(), 1, "empty rotate must be a no-op");
        wal.truncate_through(wal.last_seq()).unwrap();
        assert_eq!(wal.append(b"survives").unwrap(), 1);
        wal.sync().unwrap();
        drop(wal);
        let wal = Wal::open(&config(&dir), 0).unwrap();
        assert_eq!(
            collect(&wal, 0),
            vec![(1, b"survives".to_vec())],
            "append after empty rotate + truncate was lost on reopen"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repeated_rotate_truncate_cycles_never_drop_appends() {
        // Two consecutive snapshot cycles with no intervening ops, then a
        // write: the write must survive a reopen.
        let dir = temp_dir("double-rotate");
        let mut wal = Wal::open(&config(&dir), 0).unwrap();
        wal.append(b"a").unwrap();
        for _ in 0..2 {
            wal.rotate().unwrap();
            wal.truncate_through(wal.last_seq()).unwrap();
        }
        assert_eq!(wal.segment_count(), 1);
        assert_eq!(wal.append(b"b").unwrap(), 2);
        wal.sync().unwrap();
        drop(wal);
        let wal = Wal::open(&config(&dir), 1).unwrap();
        assert_eq!(wal.next_seq(), 3);
        assert_eq!(collect(&wal, 1), vec![(2, b"b".to_vec())]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_after_full_coverage_keeps_only_the_active_segment() {
        let dir = temp_dir("truncate-all");
        let mut wal = Wal::open(&config(&dir), 0).unwrap();
        for i in 0..10u64 {
            wal.append(format!("r{i}").as_bytes()).unwrap();
        }
        wal.rotate().unwrap();
        wal.truncate_through(10).unwrap();
        assert_eq!(wal.segment_count(), 1);
        assert_eq!(wal.oldest_seq(), 11);
        assert_eq!(collect(&wal, 0).len(), 0);
        assert_eq!(wal.append(b"next").unwrap(), 11);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_after_respects_max() {
        let dir = temp_dir("max");
        let mut wal = Wal::open(&config(&dir), 0).unwrap();
        for i in 0..20u64 {
            wal.append(format!("r{i}").as_bytes()).unwrap();
        }
        let mut seen = Vec::new();
        let n = wal.scan_after(5, 4, |seq, _| seen.push(seq)).unwrap();
        assert_eq!(n, 4);
        assert_eq!(seen, vec![6, 7, 8, 9]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(
            "always".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::Always
        );
        assert_eq!(
            "everysec".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::EverySec
        );
        assert_eq!("no".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::No);
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
    }

    #[test]
    fn oversize_payload_is_rejected() {
        let dir = temp_dir("oversize");
        let mut wal = Wal::open(&config(&dir), 0).unwrap();
        let big = vec![0u8; MAX_PAYLOAD + 1];
        assert!(wal.append(&big).is_err());
        // The rejection consumed no sequence number.
        assert_eq!(wal.append(b"ok").unwrap(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    /// Every failpoint site in this crate fires and maps to the
    /// documented error path (`WalError::Io` carrying the injected
    /// message), and the log stays usable after the fault clears.
    /// One test covers all three sites because the failpoint registry is
    /// process-global — splitting them would race under the parallel
    /// test runner.
    #[test]
    fn failpoint_sites_fire_and_map_to_io_errors() {
        let dir = temp_dir("failpoints");
        let mut cfg = config(&dir);
        cfg.fsync = FsyncPolicy::Always;
        let mut wal = Wal::open(&cfg, 0).unwrap();
        assert_eq!(wal.append(b"before").unwrap(), 1);

        // wal::append — the record write fails; no sequence number is
        // consumed and nothing lands on disk.
        shbf_failpoint::set(
            "wal::append",
            shbf_failpoint::Action::Return("ENOSPC".into()),
        );
        match wal.append(b"lost") {
            Err(WalError::Io(e)) => assert_eq!(e.to_string(), "ENOSPC"),
            other => panic!("expected injected io error, got {other:?}"),
        }
        assert_eq!(shbf_failpoint::fired("wal::append"), 1);
        shbf_failpoint::clear("wal::append");
        assert_eq!(wal.append(b"after-append-fault").unwrap(), 2);

        // wal::fsync — only fires with dirty records (the site models a
        // real fdatasync error, which is only meaningful when data is
        // pending). `Always` means the append itself surfaces it.
        shbf_failpoint::set("wal::fsync", shbf_failpoint::Action::Return("EIO".into()));
        match wal.append(b"undurable") {
            Err(WalError::Io(e)) => assert_eq!(e.to_string(), "EIO"),
            other => panic!("expected injected fsync error, got {other:?}"),
        }
        // A clean (non-dirty) log skips the sync body entirely — the
        // site is placed inside the dirty check.
        let fired_before = shbf_failpoint::fired("wal::fsync");
        wal.dirty = false;
        wal.sync().unwrap();
        assert_eq!(shbf_failpoint::fired("wal::fsync"), fired_before);
        wal.dirty = true;
        shbf_failpoint::clear("wal::fsync");
        wal.sync().unwrap();

        // wal::rotate — the new segment cannot be created; the old
        // active segment keeps accepting appends once the fault clears.
        shbf_failpoint::set(
            "wal::rotate",
            shbf_failpoint::Action::Return("disk full".into()),
        );
        match wal.rotate() {
            Err(WalError::Io(e)) => assert_eq!(e.to_string(), "disk full"),
            other => panic!("expected injected rotate error, got {other:?}"),
        }
        shbf_failpoint::clear("wal::rotate");
        wal.rotate().unwrap();
        assert_eq!(wal.segment_count(), 2);
        let seq = wal.append(b"post-rotate").unwrap();

        // Recovery: every acknowledged append is present. The
        // fsync-faulted record also survives — it was written before the
        // flush failed, and an *unacknowledged* write is allowed to
        // persist (the durability contract only binds acked ones).
        drop(wal);
        let wal = Wal::open(&cfg, 0).unwrap();
        let records = collect(&wal, 0);
        let payloads: Vec<&[u8]> = records.iter().map(|(_, p)| p.as_slice()).collect();
        assert_eq!(
            payloads,
            vec![
                b"before".as_slice(),
                b"after-append-fault".as_slice(),
                b"undurable".as_slice(),
                b"post-rotate".as_slice()
            ]
        );
        assert_eq!(wal.last_seq(), seq);
        fs::remove_dir_all(&dir).ok();
    }
}
