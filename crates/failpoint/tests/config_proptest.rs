//! Property tests: arbitrary `SHBF_FAILPOINTS`-style config strings
//! parse, render, and re-parse to the same entries (satellite of the
//! chaos-harness PR).

use proptest::collection::vec;
use proptest::prelude::*;

use shbf_failpoint::{parse_config, Action};

/// A site-name strategy: 1–12 chars from the identifier-ish alphabet the
/// real sites use (`wal::append`, `transport::read`, …).
fn site_name() -> impl Strategy<Value = String> {
    vec(0usize..38, 1..=12).prop_map(|idxs| {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789:_";
        idxs.iter().map(|&i| ALPHABET[i] as char).collect()
    })
}

/// A `return(...)` message: printable, no `;` (the entry separator) and
/// no trailing `)` ambiguity beyond what the grammar allows — the parser
/// strips exactly one final `)`, so interior parens are fair game.
fn return_message() -> impl Strategy<Value = String> {
    vec(0usize..64, 0..=20).prop_map(|idxs| {
        const ALPHABET: &[u8] =
            b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _-:.,(!?";
        idxs.iter().map(|&i| ALPHABET[i] as char).collect()
    })
}

fn action() -> impl Strategy<Value = Action> {
    (
        0usize..5,
        return_message(),
        0u64..1_000_000,
        1u64..1_000_000,
    )
        .prop_map(|(pick, msg, ms, n)| match pick {
            0 => Action::Off,
            1 => Action::Return(msg),
            2 => Action::Delay(ms),
            3 => Action::Panic,
            _ => Action::OneIn(n),
        })
}

// The offline proptest shim has no prop_map; provide one via a tiny
// adapter so the strategies above read like upstream proptest.
trait PropMapExt: Strategy + Sized {
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Mapped<Self, F> {
        Mapped { inner: self, f }
    }
}
impl<S: Strategy> PropMapExt for S {}

struct Mapped<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Mapped<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut proptest::TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every action renders to a string `Action::parse` maps back to the
    /// same action.
    #[test]
    fn action_display_round_trips(a in action()) {
        let rendered = a.to_string();
        let reparsed = Action::parse(&rendered);
        prop_assert_eq!(reparsed.as_ref(), Ok(&a), "rendered `{}`", rendered);
    }

    /// A whole config string (joined entries) parses back to the same
    /// (site, action) list.
    #[test]
    fn config_string_round_trips(entries in vec((site_name(), action()), 0..8)) {
        let config = entries
            .iter()
            .map(|(site, a)| format!("{site}={a}"))
            .collect::<Vec<_>>()
            .join(";");
        let parsed = parse_config(&config).expect("rendered config must parse");
        prop_assert_eq!(parsed, entries);
    }

    /// The parser is total: arbitrary byte soup either parses or returns
    /// an error — it never panics.
    #[test]
    fn parser_is_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let soup: String = bytes.iter().map(|&b| (b % 96 + 32) as char).collect();
        let _ = parse_config(&soup);
        let _ = Action::parse(&soup);
    }
}
