//! Named failpoints for fault injection (`fail-rs` style, std-only).
//!
//! A **failpoint** is a named site compiled into production code where a
//! test can inject a fault. Sites are checked with [`fail`]:
//!
//! ```
//! fn append(buf: &[u8]) -> std::io::Result<()> {
//!     if let Some(msg) = shbf_failpoint::fail("wal::append") {
//!         return Err(std::io::Error::other(msg));
//!     }
//!     // ... the real write ...
//!     Ok(())
//! }
//! ```
//!
//! When no failpoint is configured — the production steady state — a
//! check is a single relaxed atomic load and nothing else: no lock, no
//! allocation, no string hashing. Only once at least one site is armed
//! does the check take the registry lock to look its name up.
//!
//! ## Actions
//!
//! | Action | Effect at the site |
//! |---|---|
//! | `off` | nothing (and the site is removed from the registry) |
//! | `return(msg)` | [`fail`] returns `Some(msg)` — the caller errors out |
//! | `delay(ms)` | sleep `ms` milliseconds, then proceed normally |
//! | `panic` | panic (exercises poisoning / abort paths) |
//! | `1in(n)` | every n-th hit returns a generic injected error |
//!
//! `1in(n)` is deterministic (a per-site hit counter, firing on hits
//! n, 2n, 3n, …) so chaos scenarios replay identically.
//!
//! ## Configuration
//!
//! Sites are armed programmatically ([`set`]), from a config string
//! ([`apply_config`], format `site=action;site=action`), or from the
//! `SHBF_FAILPOINTS` environment variable ([`init_from_env`], which the
//! server calls at boot). [`config_string`] renders the live registry
//! back into the same format, and every action's `Display` round-trips
//! through [`Action::parse`] (property-tested). Because `;` separates
//! entries and `=` binds a site to its action, a `return(msg)` message
//! must not contain `;`.
//!
//! The registry is process-global: parallel tests that arm sites must
//! serialize themselves (e.g. behind a shared mutex) or use disjoint
//! site names.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What an armed failpoint does when its site is hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// No effect; [`set`]ting it disarms the site.
    Off,
    /// Return this error message from the site.
    Return(String),
    /// Sleep this many milliseconds, then proceed normally.
    Delay(u64),
    /// Panic at the site.
    Panic,
    /// Return a generic injected error on every n-th hit (n ≥ 1).
    OneIn(u64),
}

impl Action {
    /// Parses one action: `off`, `return(msg)`, `delay(ms)`, `panic`,
    /// or `1in(n)`.
    pub fn parse(s: &str) -> Result<Action, ParseError> {
        let s = s.trim();
        if s == "off" {
            return Ok(Action::Off);
        }
        if s == "panic" {
            return Ok(Action::Panic);
        }
        if let Some(inner) = s.strip_prefix("return(").and_then(|r| r.strip_suffix(')')) {
            return Ok(Action::Return(inner.to_string()));
        }
        if let Some(inner) = s.strip_prefix("delay(").and_then(|r| r.strip_suffix(')')) {
            let ms = inner
                .parse::<u64>()
                .map_err(|_| ParseError(format!("delay wants milliseconds, got `{inner}`")))?;
            return Ok(Action::Delay(ms));
        }
        if let Some(inner) = s.strip_prefix("1in(").and_then(|r| r.strip_suffix(')')) {
            let n = inner
                .parse::<u64>()
                .map_err(|_| ParseError(format!("1in wants a count, got `{inner}`")))?;
            if n == 0 {
                return Err(ParseError("1in(0) would fire never and always".into()));
            }
            return Ok(Action::OneIn(n));
        }
        Err(ParseError(format!(
            "unknown action `{s}` (want off|return(msg)|delay(ms)|panic|1in(n))"
        )))
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Off => write!(f, "off"),
            Action::Return(msg) => write!(f, "return({msg})"),
            Action::Delay(ms) => write!(f, "delay({ms})"),
            Action::Panic => write!(f, "panic"),
            Action::OneIn(n) => write!(f, "1in({n})"),
        }
    }
}

/// A malformed action or config string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failpoint config: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug)]
struct Site {
    action: Action,
    /// Evaluations of this site since it was armed.
    hits: u64,
    /// Evaluations that had an effect (error, delay, or panic).
    fired: u64,
}

/// `true` iff at least one site is armed — the only state the disabled
/// hot path reads.
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn sites() -> &'static Mutex<BTreeMap<String, Site>> {
    static SITES: OnceLock<Mutex<BTreeMap<String, Site>>> = OnceLock::new();
    SITES.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Evaluates the failpoint at `site`. Returns `Some(error message)` when
/// an armed `return`/`1in` action fires; sleeps through `delay` actions
/// and panics on `panic` actions. With nothing armed anywhere this is a
/// single relaxed atomic load.
#[inline]
pub fn fail(site: &str) -> Option<String> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    fail_armed(site)
}

#[cold]
fn fail_armed(site: &str) -> Option<String> {
    let mut map = sites().lock().unwrap_or_else(|e| e.into_inner());
    let entry = map.get_mut(site)?;
    entry.hits += 1;
    match &entry.action {
        Action::Off => None,
        Action::Return(msg) => {
            entry.fired += 1;
            Some(msg.clone())
        }
        Action::Delay(ms) => {
            entry.fired += 1;
            let ms = *ms;
            drop(map);
            std::thread::sleep(Duration::from_millis(ms));
            None
        }
        Action::Panic => {
            entry.fired += 1;
            drop(map);
            panic!("failpoint `{site}` panic");
        }
        Action::OneIn(n) => {
            if entry.hits % *n == 0 {
                entry.fired += 1;
                Some(format!("injected failpoint `{site}`"))
            } else {
                None
            }
        }
    }
}

/// Arms `site` with `action` ([`Action::Off`] disarms it). Counters
/// reset when a site is (re)armed.
pub fn set(site: &str, action: Action) {
    let mut map = sites().lock().unwrap_or_else(|e| e.into_inner());
    if action == Action::Off {
        map.remove(site);
    } else {
        map.insert(
            site.to_string(),
            Site {
                action,
                hits: 0,
                fired: 0,
            },
        );
    }
    ACTIVE.store(!map.is_empty(), Ordering::Relaxed);
}

/// Disarms `site` (same as `set(site, Action::Off)`).
pub fn clear(site: &str) {
    set(site, Action::Off);
}

/// Disarms every site.
pub fn clear_all() {
    let mut map = sites().lock().unwrap_or_else(|e| e.into_inner());
    map.clear();
    ACTIVE.store(false, Ordering::Relaxed);
}

/// Evaluations of `site` since it was armed (0 when unarmed — unarmed
/// sites cost nothing and count nothing).
pub fn hits(site: &str) -> u64 {
    let map = sites().lock().unwrap_or_else(|e| e.into_inner());
    map.get(site).map_or(0, |s| s.hits)
}

/// Evaluations of `site` that had an effect (error, delay, or panic).
pub fn fired(site: &str) -> u64 {
    let map = sites().lock().unwrap_or_else(|e| e.into_inner());
    map.get(site).map_or(0, |s| s.fired)
}

/// Every armed site with its action and counters, name-sorted:
/// `(site, action, hits, fired)`.
pub fn list() -> Vec<(String, Action, u64, u64)> {
    let map = sites().lock().unwrap_or_else(|e| e.into_inner());
    map.iter()
        .map(|(name, s)| (name.clone(), s.action.clone(), s.hits, s.fired))
        .collect()
}

/// Parses a config string (`site=action;site=action`; empty entries and
/// surrounding whitespace are ignored) without touching the registry.
pub fn parse_config(config: &str) -> Result<Vec<(String, Action)>, ParseError> {
    let mut out = Vec::new();
    for entry in config.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (site, action) = entry
            .split_once('=')
            .ok_or_else(|| ParseError(format!("entry `{entry}` is missing `=`")))?;
        let site = site.trim();
        if site.is_empty() {
            return Err(ParseError(format!(
                "entry `{entry}` has an empty site name"
            )));
        }
        out.push((site.to_string(), Action::parse(action)?));
    }
    Ok(out)
}

/// Parses `config` and arms every entry. On a parse error nothing is
/// armed.
pub fn apply_config(config: &str) -> Result<(), ParseError> {
    let entries = parse_config(config)?;
    for (site, action) in entries {
        set(&site, action);
    }
    Ok(())
}

/// Renders the armed sites back into the config-string format (the
/// inverse of [`apply_config`] for non-`off` entries).
pub fn config_string() -> String {
    let map = sites().lock().unwrap_or_else(|e| e.into_inner());
    map.iter()
        .map(|(name, s)| format!("{name}={}", s.action))
        .collect::<Vec<_>>()
        .join(";")
}

/// Name of the environment variable [`init_from_env`] reads.
pub const ENV_VAR: &str = "SHBF_FAILPOINTS";

/// Arms failpoints from the `SHBF_FAILPOINTS` environment variable (a
/// config string). Unset or empty → no-op. The server calls this once
/// at boot.
pub fn init_from_env() -> Result<(), ParseError> {
    match std::env::var(ENV_VAR) {
        Ok(config) => apply_config(&config),
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as TestMutex;

    /// The registry is process-global; tests that arm sites serialize
    /// through this and clean up after themselves.
    static SERIAL: TestMutex<()> = TestMutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        clear_all();
        guard
    }

    #[test]
    fn disabled_hot_path_is_inert() {
        let _g = locked();
        assert_eq!(fail("nowhere"), None);
        assert_eq!(hits("nowhere"), 0);
    }

    #[test]
    fn return_action_fires_and_counts() {
        let _g = locked();
        set("t::ret", Action::Return("boom".into()));
        assert_eq!(fail("t::ret"), Some("boom".into()));
        assert_eq!(fail("t::other"), None, "only the armed site fires");
        assert_eq!(hits("t::ret"), 1);
        assert_eq!(fired("t::ret"), 1);
        clear("t::ret");
        assert_eq!(fail("t::ret"), None);
    }

    #[test]
    fn one_in_fires_deterministically_every_nth() {
        let _g = locked();
        set("t::nth", Action::OneIn(3));
        let fired_pattern: Vec<bool> = (0..9).map(|_| fail("t::nth").is_some()).collect();
        assert_eq!(
            fired_pattern,
            [false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(hits("t::nth"), 9);
        assert_eq!(fired("t::nth"), 3);
        clear_all();
    }

    #[test]
    fn delay_sleeps_then_proceeds() {
        let _g = locked();
        set("t::slow", Action::Delay(30));
        let start = std::time::Instant::now();
        assert_eq!(fail("t::slow"), None);
        assert!(start.elapsed() >= Duration::from_millis(25));
        clear_all();
    }

    #[test]
    #[should_panic(expected = "failpoint `t::die` panic")]
    fn panic_action_panics() {
        // Deliberately does not hold the serial lock: a panic would
        // poison it. A unique site name keeps it isolated.
        set("t::die", Action::Panic);
        fail("t::die");
    }

    #[test]
    fn config_round_trips() {
        let _g = locked();
        let config = "a::x=return(disk full);b::y=delay(12);c::z=1in(4);d::w=panic";
        apply_config(config).unwrap();
        assert_eq!(config_string(), config);
        let listed = list();
        assert_eq!(listed.len(), 4);
        assert_eq!(listed[0].0, "a::x");
        assert_eq!(listed[0].1, Action::Return("disk full".into()));
        clear_all();
        assert_eq!(config_string(), "");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Action::parse("explode").is_err());
        assert!(Action::parse("delay(soon)").is_err());
        assert!(Action::parse("1in(0)").is_err());
        assert!(parse_config("no-equals-here").is_err());
        assert!(parse_config("=return(x)").is_err());
        // Empty entries and whitespace are tolerated.
        assert_eq!(parse_config(" ; ;").unwrap(), vec![]);
        assert_eq!(
            parse_config(" a = off ").unwrap(),
            vec![("a".into(), Action::Off)]
        );
    }

    #[test]
    fn rearming_resets_counters_and_off_disarms() {
        let _g = locked();
        set("t::r", Action::Return("x".into()));
        fail("t::r");
        assert_eq!(hits("t::r"), 1);
        set("t::r", Action::Return("y".into()));
        assert_eq!(hits("t::r"), 0, "rearming resets counters");
        set("t::r", Action::Off);
        assert!(list().is_empty());
        assert_eq!(fail("t::r"), None);
    }
}
