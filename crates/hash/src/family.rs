//! Hash families: how a filter obtains its `k` "independent hash functions
//! with uniformly distributed outputs" (paper §1.2).
//!
//! Two strategies are provided:
//!
//! * [`SeededFamily`]: one base algorithm, `k` seeds derived from a master
//!   seed via SplitMix64. Each member costs one full hash computation — this
//!   matches the paper's cost accounting (BF pays `k` computations per query,
//!   ShBF_M pays `k/2 + 1`).
//! * [`DoubleHashFamily`]: the Kirsch–Mitzenmacher construction
//!   `g_i = h1 + i·h2 (mod m)` from two base hashes — the related-work
//!   "less hashing" baseline (§2.1) whose cost is 2 computations but whose
//!   FPR is slightly worse.

use crate::mix::splitmix64;

/// The base hash algorithms available to families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HashAlg {
    /// MurmurHash3 x64-128 (low 64 bits). Default: fast and well distributed.
    Murmur3,
    /// MurmurHash3 x86-32, widened to 64 bits via two seeded invocations.
    Murmur3_32,
    /// xxHash64.
    XxHash64,
    /// FNV-1a 64 with a post-mix.
    Fnv1a,
    /// Bob Jenkins' lookup3 (`hashlittle2`), the paper's hash source.
    Lookup3,
    /// SipHash-2-4 keyed from the seed.
    SipHash24,
}

impl HashAlg {
    /// All supported algorithms.
    pub const ALL: [HashAlg; 6] = [
        HashAlg::Murmur3,
        HashAlg::Murmur3_32,
        HashAlg::XxHash64,
        HashAlg::Fnv1a,
        HashAlg::Lookup3,
        HashAlg::SipHash24,
    ];

    /// Stable numeric tag for serialization.
    pub fn tag(self) -> u8 {
        match self {
            HashAlg::Murmur3 => 0,
            HashAlg::Murmur3_32 => 1,
            HashAlg::XxHash64 => 2,
            HashAlg::Fnv1a => 3,
            HashAlg::Lookup3 => 4,
            HashAlg::SipHash24 => 5,
        }
    }

    /// Inverse of [`HashAlg::tag`].
    pub fn from_tag(tag: u8) -> Option<HashAlg> {
        HashAlg::ALL.into_iter().find(|a| a.tag() == tag)
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            HashAlg::Murmur3 => "murmur3-x64-128",
            HashAlg::Murmur3_32 => "murmur3-x86-32",
            HashAlg::XxHash64 => "xxhash64",
            HashAlg::Fnv1a => "fnv1a-64",
            HashAlg::Lookup3 => "jenkins-lookup3",
            HashAlg::SipHash24 => "siphash-2-4",
        }
    }
}

/// A family of 64-bit hash functions indexed by `0..`.
///
/// Filters call `hash(i, item)` lazily, one index at a time, so that
/// short-circuiting queries also save hash *computations* — the effect the
/// paper measures in Fig. 9.
pub trait HashFamily {
    /// Hash `item` with the `index`-th member function.
    fn hash(&self, index: usize, item: &[u8]) -> u64;

    /// The cost, in "hash computations" (the paper's unit), of evaluating
    /// `count` distinct member functions on one item.
    ///
    /// For a seeded family this is `count`; for double hashing it is
    /// `min(count, 2)` because all members derive from two base hashes.
    fn computations_for(&self, count: usize) -> usize {
        count
    }

    /// Algorithm name for reports.
    fn name(&self) -> &'static str;
}

/// `k` independent functions obtained by seeding one base algorithm.
///
/// Seeds are derived from `master_seed` with SplitMix64, so two families with
/// the same `(alg, master_seed)` are identical — filters can be rebuilt or
/// deserialized and keep addressing the same bit positions.
#[derive(Debug, Clone)]
pub struct SeededFamily {
    alg: HashAlg,
    seeds: Box<[u64]>,
}

impl SeededFamily {
    /// Creates a family of `arity` functions.
    pub fn new(alg: HashAlg, master_seed: u64, arity: usize) -> Self {
        let mut s = master_seed;
        let seeds = (0..arity)
            .map(|_| {
                s = splitmix64(s);
                s
            })
            .collect();
        SeededFamily { alg, seeds }
    }

    /// Number of member functions.
    #[inline]
    pub fn arity(&self) -> usize {
        self.seeds.len()
    }

    /// The base algorithm.
    #[inline]
    pub fn alg(&self) -> HashAlg {
        self.alg
    }

    /// The derived per-function seeds (exposed for serialization).
    #[inline]
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }
}

impl HashFamily for SeededFamily {
    #[inline]
    fn hash(&self, index: usize, item: &[u8]) -> u64 {
        crate::hash_seeded(self.alg, self.seeds[index], item)
    }

    fn name(&self) -> &'static str {
        self.alg.name()
    }
}

/// Kirsch–Mitzenmacher double hashing: `g_i(x) = h1(x) + i · h2(x)`.
///
/// Both base hashes come from a *single* MurmurHash3 x64-128 invocation
/// (its two 64-bit halves), so the whole family costs one invocation — the
/// cheapest possible family, at the price of the increased FPR the paper
/// cites (\[13\] in §2.1).
#[derive(Debug, Clone)]
pub struct DoubleHashFamily {
    seed: u64,
}

impl DoubleHashFamily {
    /// Creates the family from a master seed.
    pub fn new(master_seed: u64) -> Self {
        DoubleHashFamily {
            seed: splitmix64(master_seed),
        }
    }

    /// Returns the two base hashes of `item`.
    #[inline]
    pub fn base_pair(&self, item: &[u8]) -> (u64, u64) {
        let (h1, h2) = crate::murmur3::murmur3_x64_128(item, self.seed);
        // h2 must be odd so that i*h2 walks the whole residue ring for
        // power-of-two table sizes; harmless otherwise.
        (h1, h2 | 1)
    }
}

impl HashFamily for DoubleHashFamily {
    #[inline]
    fn hash(&self, index: usize, item: &[u8]) -> u64 {
        let (h1, h2) = self.base_pair(item);
        h1.wrapping_add((index as u64).wrapping_mul(h2))
    }

    fn computations_for(&self, count: usize) -> usize {
        count.min(1)
    }

    fn name(&self) -> &'static str {
        "km-double-hashing(murmur3)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_family_members_differ() {
        let fam = SeededFamily::new(HashAlg::Murmur3, 1, 16);
        let item = b"element";
        let mut seen = std::collections::HashSet::new();
        for i in 0..16 {
            assert!(seen.insert(fam.hash(i, item)), "member {i} collided");
        }
    }

    #[test]
    fn seeded_family_reproducible() {
        let a = SeededFamily::new(HashAlg::XxHash64, 99, 4);
        let b = SeededFamily::new(HashAlg::XxHash64, 99, 4);
        for i in 0..4 {
            assert_eq!(a.hash(i, b"x"), b.hash(i, b"x"));
        }
    }

    #[test]
    fn double_hashing_is_affine_in_index() {
        let fam = DoubleHashFamily::new(5);
        let item = b"affine";
        let (h1, h2) = fam.base_pair(item);
        for i in 0..10usize {
            assert_eq!(
                fam.hash(i, item),
                h1.wrapping_add((i as u64).wrapping_mul(h2))
            );
        }
    }

    #[test]
    fn double_hashing_costs_one_computation() {
        let fam = DoubleHashFamily::new(5);
        assert_eq!(fam.computations_for(8), 1);
        assert_eq!(fam.computations_for(0), 0);
        let seeded = SeededFamily::new(HashAlg::Murmur3, 5, 8);
        assert_eq!(seeded.computations_for(8), 8);
    }

    #[test]
    fn all_algorithms_work_in_a_family() {
        for alg in HashAlg::ALL {
            let fam = SeededFamily::new(alg, 11, 3);
            assert_ne!(fam.hash(0, b"q"), fam.hash(1, b"q"), "{alg:?}");
            assert_ne!(fam.hash(1, b"q"), fam.hash(2, b"q"), "{alg:?}");
        }
    }
}
