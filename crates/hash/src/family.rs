//! Hash families: how a filter obtains its `k` "independent hash functions
//! with uniformly distributed outputs" (paper §1.2).
//!
//! Three strategies are provided:
//!
//! * [`SeededFamily`]: one base algorithm, `k` seeds derived from a master
//!   seed via SplitMix64. Each member costs one full hash computation — this
//!   matches the paper's cost accounting (BF pays `k` computations per query,
//!   ShBF_M pays `k/2 + 1`).
//! * [`DoubleHashFamily`]: the Kirsch–Mitzenmacher construction
//!   `g_i = h1 + i·h2 (mod m)` from two base hashes — the related-work
//!   "less hashing" baseline (§2.1). Both base hashes are the two halves of
//!   one MurmurHash3 x64-128 invocation, so the whole family costs **one**
//!   computation; the price is the slightly worse FPR of the linear walk.
//! * [`OneShotFamily`](crate::OneShotFamily): one Murmur3 x64-128 pass per
//!   key, indexes derived by SplitMix mixing of the digest — the digest-once
//!   fast path (also 1 computation, without the linear-structure FPR cost).
//!
//! [`QueryFamily`] is the closed dispatch enum filters embed: seeded or
//! one-shot, selected by [`FamilyKind`] and serialized via its stable tag.

use crate::digest::{Digest128, OneShotFamily};
use crate::mix::splitmix64;

/// The base hash algorithms available to families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HashAlg {
    /// MurmurHash3 x64-128 (low 64 bits). Default: fast and well distributed.
    Murmur3,
    /// MurmurHash3 x86-32, widened to 64 bits via two seeded invocations.
    Murmur3_32,
    /// xxHash64.
    XxHash64,
    /// FNV-1a 64 with a post-mix.
    Fnv1a,
    /// Bob Jenkins' lookup3 (`hashlittle2`), the paper's hash source.
    Lookup3,
    /// SipHash-2-4 keyed from the seed.
    SipHash24,
}

impl HashAlg {
    /// All supported algorithms.
    pub const ALL: [HashAlg; 6] = [
        HashAlg::Murmur3,
        HashAlg::Murmur3_32,
        HashAlg::XxHash64,
        HashAlg::Fnv1a,
        HashAlg::Lookup3,
        HashAlg::SipHash24,
    ];

    /// Stable numeric tag for serialization.
    pub fn tag(self) -> u8 {
        match self {
            HashAlg::Murmur3 => 0,
            HashAlg::Murmur3_32 => 1,
            HashAlg::XxHash64 => 2,
            HashAlg::Fnv1a => 3,
            HashAlg::Lookup3 => 4,
            HashAlg::SipHash24 => 5,
        }
    }

    /// Inverse of [`HashAlg::tag`].
    pub fn from_tag(tag: u8) -> Option<HashAlg> {
        HashAlg::ALL.into_iter().find(|a| a.tag() == tag)
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            HashAlg::Murmur3 => "murmur3-x64-128",
            HashAlg::Murmur3_32 => "murmur3-x86-32",
            HashAlg::XxHash64 => "xxhash64",
            HashAlg::Fnv1a => "fnv1a-64",
            HashAlg::Lookup3 => "jenkins-lookup3",
            HashAlg::SipHash24 => "siphash-2-4",
        }
    }
}

/// A family of 64-bit hash functions indexed by `0..`.
///
/// Filters call `hash(i, item)` lazily, one index at a time, so that
/// short-circuiting queries also save hash *computations* — the effect the
/// paper measures in Fig. 9.
pub trait HashFamily {
    /// Hash `item` with the `index`-th member function.
    fn hash(&self, index: usize, item: &[u8]) -> u64;

    /// The cost, in "hash computations" (the paper's unit), of evaluating
    /// `count` distinct member functions on one item.
    ///
    /// For a seeded family this is `count`; for double hashing it is
    /// `min(count, 1)` because both base hashes are the two halves of a
    /// single MurmurHash3 x64-128 invocation (see
    /// [`DoubleHashFamily::base_pair`]).
    fn computations_for(&self, count: usize) -> usize {
        count
    }

    /// Algorithm name for reports.
    fn name(&self) -> &'static str;
}

/// `k` independent functions obtained by seeding one base algorithm.
///
/// Seeds are derived from `master_seed` with SplitMix64, so two families with
/// the same `(alg, master_seed)` are identical — filters can be rebuilt or
/// deserialized and keep addressing the same bit positions.
#[derive(Debug, Clone)]
pub struct SeededFamily {
    alg: HashAlg,
    seeds: Box<[u64]>,
}

impl SeededFamily {
    /// Creates a family of `arity` functions.
    pub fn new(alg: HashAlg, master_seed: u64, arity: usize) -> Self {
        let mut s = master_seed;
        let seeds = (0..arity)
            .map(|_| {
                s = splitmix64(s);
                s
            })
            .collect();
        SeededFamily { alg, seeds }
    }

    /// Number of member functions.
    #[inline]
    pub fn arity(&self) -> usize {
        self.seeds.len()
    }

    /// The base algorithm.
    #[inline]
    pub fn alg(&self) -> HashAlg {
        self.alg
    }

    /// The derived per-function seeds (exposed for serialization).
    #[inline]
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }
}

impl HashFamily for SeededFamily {
    #[inline]
    fn hash(&self, index: usize, item: &[u8]) -> u64 {
        crate::hash_seeded(self.alg, self.seeds[index], item)
    }

    fn name(&self) -> &'static str {
        self.alg.name()
    }
}

/// Kirsch–Mitzenmacher double hashing: `g_i(x) = h1(x) + i · h2(x)`.
///
/// Both base hashes come from a *single* MurmurHash3 x64-128 invocation
/// (its two 64-bit halves), so the whole family costs one invocation — the
/// cheapest possible family, at the price of the increased FPR the paper
/// cites (\[13\] in §2.1).
#[derive(Debug, Clone)]
pub struct DoubleHashFamily {
    seed: u64,
}

impl DoubleHashFamily {
    /// Creates the family from a master seed.
    pub fn new(master_seed: u64) -> Self {
        DoubleHashFamily {
            seed: splitmix64(master_seed),
        }
    }

    /// Returns the two base hashes of `item`.
    #[inline]
    pub fn base_pair(&self, item: &[u8]) -> (u64, u64) {
        let (h1, h2) = crate::murmur3::murmur3_x64_128(item, self.seed);
        // h2 must be odd so that i*h2 walks the whole residue ring for
        // power-of-two table sizes; harmless otherwise.
        (h1, h2 | 1)
    }
}

impl HashFamily for DoubleHashFamily {
    #[inline]
    fn hash(&self, index: usize, item: &[u8]) -> u64 {
        let (h1, h2) = self.base_pair(item);
        h1.wrapping_add((index as u64).wrapping_mul(h2))
    }

    fn computations_for(&self, count: usize) -> usize {
        count.min(1)
    }

    fn name(&self) -> &'static str {
        "km-double-hashing(murmur3)"
    }
}

/// Which hash-family construction a filter uses, with a stable serialization
/// tag.
///
/// Tags 0–5 are the [`HashAlg`] tags (a seeded family of that algorithm), so
/// every blob written before [`QueryFamily`] existed still decodes to the
/// seeded family it was built with. The one-shot family claims tag 16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FamilyKind {
    /// `k` independently seeded invocations of one base algorithm.
    Seeded(HashAlg),
    /// One Murmur3 x64-128 digest per key, indexes derived by mixing.
    OneShot,
}

impl FamilyKind {
    /// Serialization tag of the one-shot family (seeded families reuse
    /// their [`HashAlg::tag`], keeping pre-existing blobs valid).
    pub const ONE_SHOT_TAG: u8 = 16;

    /// Stable numeric tag for serialization.
    pub fn tag(self) -> u8 {
        match self {
            FamilyKind::Seeded(alg) => alg.tag(),
            FamilyKind::OneShot => Self::ONE_SHOT_TAG,
        }
    }

    /// Inverse of [`FamilyKind::tag`].
    pub fn from_tag(tag: u8) -> Option<FamilyKind> {
        if tag == Self::ONE_SHOT_TAG {
            Some(FamilyKind::OneShot)
        } else {
            HashAlg::from_tag(tag).map(FamilyKind::Seeded)
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            FamilyKind::Seeded(alg) => alg.name(),
            FamilyKind::OneShot => "one-shot(murmur3-x64-128)",
        }
    }
}

/// The hash family embedded in every filter: a closed enum (not a trait
/// object) so the per-probe dispatch is a predictable two-way branch the
/// optimizer can hoist out of query loops.
#[derive(Debug, Clone)]
pub enum QueryFamily {
    /// Paper-faithful seeded family: one full hash pass per index.
    Seeded(SeededFamily),
    /// Digest-once family: one hash pass per key, mixing per index.
    OneShot(OneShotFamily),
}

impl QueryFamily {
    /// Creates a family of `arity` member functions of the given kind.
    /// (`arity` only matters for the seeded construction; the one-shot
    /// digest derives any index.)
    pub fn new(kind: FamilyKind, master_seed: u64, arity: usize) -> Self {
        match kind {
            FamilyKind::Seeded(alg) => {
                QueryFamily::Seeded(SeededFamily::new(alg, master_seed, arity))
            }
            FamilyKind::OneShot => QueryFamily::OneShot(OneShotFamily::new(master_seed)),
        }
    }

    /// The construction this family uses.
    pub fn kind(&self) -> FamilyKind {
        match self {
            QueryFamily::Seeded(f) => FamilyKind::Seeded(f.alg()),
            QueryFamily::OneShot(_) => FamilyKind::OneShot,
        }
    }

    /// Hash `item` with the `index`-th member (one-off call sites; hot
    /// loops should [`prepare`](Self::prepare) once instead).
    #[inline]
    pub fn hash(&self, index: usize, item: &[u8]) -> u64 {
        match self {
            QueryFamily::Seeded(f) => f.hash(index, item),
            QueryFamily::OneShot(f) => f.digest(item).select(index),
        }
    }

    /// Prepares one key for repeated index derivation. For the seeded
    /// family this is free and subsequent [`PreparedKey::index`] calls each
    /// run the base hash (preserving lazy short-circuit cost accounting);
    /// for the one-shot family the single digest happens here and every
    /// index afterwards is a few arithmetic ops.
    #[inline]
    pub fn prepare<'a>(&'a self, item: &'a [u8]) -> PreparedKey<'a> {
        match self {
            QueryFamily::Seeded(f) => PreparedKey::Seeded { family: f, item },
            QueryFamily::OneShot(f) => PreparedKey::OneShot(f.digest(item)),
        }
    }

    /// Cost in the paper's "hash computations" unit of evaluating `count`
    /// member functions on one key.
    pub fn computations_for(&self, count: usize) -> usize {
        match self {
            QueryFamily::Seeded(f) => f.computations_for(count),
            QueryFamily::OneShot(f) => f.computations_for(count),
        }
    }

    /// Marginal hash-computation cost of the next member evaluation, given
    /// `already` evaluations happened on this key. Profiled query paths use
    /// this so per-probe accounting stays honest for both constructions.
    #[inline]
    pub fn probe_cost(&self, already: usize) -> u64 {
        match self {
            QueryFamily::Seeded(_) => 1,
            QueryFamily::OneShot(_) => u64::from(already == 0),
        }
    }

    /// Algorithm name for reports.
    pub fn name(&self) -> &'static str {
        self.kind().name()
    }
}

impl HashFamily for QueryFamily {
    #[inline]
    fn hash(&self, index: usize, item: &[u8]) -> u64 {
        QueryFamily::hash(self, index, item)
    }

    fn computations_for(&self, count: usize) -> usize {
        QueryFamily::computations_for(self, count)
    }

    fn name(&self) -> &'static str {
        QueryFamily::name(self)
    }
}

/// One key, prepared for index derivation against a [`QueryFamily`].
#[derive(Debug, Clone, Copy)]
pub enum PreparedKey<'a> {
    /// Seeded: indexes hash the key lazily, one base pass each.
    Seeded {
        /// The owning family.
        family: &'a SeededFamily,
        /// The key bytes.
        item: &'a [u8],
    },
    /// One-shot: the digest was computed at prepare time.
    OneShot(Digest128),
}

impl PreparedKey<'_> {
    /// The `index`-th member value for this key.
    #[inline]
    pub fn index(&self, index: usize) -> u64 {
        match self {
            PreparedKey::Seeded { family, item } => family.hash(index, item),
            PreparedKey::OneShot(d) => d.select(index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_family_members_differ() {
        let fam = SeededFamily::new(HashAlg::Murmur3, 1, 16);
        let item = b"element";
        let mut seen = std::collections::HashSet::new();
        for i in 0..16 {
            assert!(seen.insert(fam.hash(i, item)), "member {i} collided");
        }
    }

    #[test]
    fn seeded_family_reproducible() {
        let a = SeededFamily::new(HashAlg::XxHash64, 99, 4);
        let b = SeededFamily::new(HashAlg::XxHash64, 99, 4);
        for i in 0..4 {
            assert_eq!(a.hash(i, b"x"), b.hash(i, b"x"));
        }
    }

    #[test]
    fn double_hashing_is_affine_in_index() {
        let fam = DoubleHashFamily::new(5);
        let item = b"affine";
        let (h1, h2) = fam.base_pair(item);
        for i in 0..10usize {
            assert_eq!(
                fam.hash(i, item),
                h1.wrapping_add((i as u64).wrapping_mul(h2))
            );
        }
    }

    #[test]
    fn double_hashing_costs_one_computation() {
        // `base_pair` derives both halves from a single murmur3_x64_128
        // invocation, so any number of members costs exactly one
        // computation — the trait doc, impl, and this test must agree.
        let fam = DoubleHashFamily::new(5);
        assert_eq!(fam.computations_for(8), 1);
        assert_eq!(fam.computations_for(2), 1);
        assert_eq!(fam.computations_for(1), 1);
        assert_eq!(fam.computations_for(0), 0);
        let seeded = SeededFamily::new(HashAlg::Murmur3, 5, 8);
        assert_eq!(seeded.computations_for(8), 8);
    }

    #[test]
    fn family_kind_tags_roundtrip_and_preserve_seeded_blobs() {
        for alg in HashAlg::ALL {
            let kind = FamilyKind::Seeded(alg);
            // Seeded kinds reuse the bare HashAlg tag byte, so blobs written
            // before FamilyKind existed decode unchanged.
            assert_eq!(kind.tag(), alg.tag());
            assert_eq!(FamilyKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(
            FamilyKind::from_tag(FamilyKind::ONE_SHOT_TAG),
            Some(FamilyKind::OneShot)
        );
        assert_eq!(FamilyKind::from_tag(99), None);
    }

    #[test]
    fn query_family_prepare_matches_direct_hash() {
        let items: &[&[u8]] = &[b"a", b"13-byte flowid", b"longer key material here"];
        for kind in [FamilyKind::Seeded(HashAlg::Murmur3), FamilyKind::OneShot] {
            let fam = QueryFamily::new(kind, 77, 9);
            for item in items {
                let key = fam.prepare(item);
                for i in 0..9 {
                    assert_eq!(key.index(i), fam.hash(i, item), "{kind:?} index {i}");
                }
            }
        }
    }

    #[test]
    fn query_family_cost_accounting() {
        let seeded = QueryFamily::new(FamilyKind::Seeded(HashAlg::Murmur3), 1, 8);
        assert_eq!(seeded.computations_for(5), 5);
        assert_eq!(seeded.probe_cost(0), 1);
        assert_eq!(seeded.probe_cost(3), 1);
        let one_shot = QueryFamily::new(FamilyKind::OneShot, 1, 8);
        assert_eq!(one_shot.computations_for(5), 1);
        assert_eq!(one_shot.probe_cost(0), 1);
        assert_eq!(one_shot.probe_cost(3), 0);
    }

    #[test]
    fn all_algorithms_work_in_a_family() {
        for alg in HashAlg::ALL {
            let fam = SeededFamily::new(alg, 11, 3);
            assert_ne!(fam.hash(0, b"q"), fam.hash(1, b"q"), "{alg:?}");
            assert_ne!(fam.hash(1, b"q"), fam.hash(2, b"q"), "{alg:?}");
        }
    }
}
