//! # shbf-hash — hash substrate for the Shifting Bloom Filter framework
//!
//! The ShBF paper (Yang et al., VLDB 2016) assumes `k` *independent hash
//! functions with uniformly distributed outputs* (§1.2). The authors harvested
//! candidate functions from Bob Jenkins' collection at burtleburtle.net and kept
//! the 18 that passed a per-bit balance test (§6.1). This crate reproduces that
//! substrate from scratch:
//!
//! * five independently implemented 64-bit hash algorithms —
//!   [MurmurHash3](murmur3) (x64-128 and x86-32), [xxHash64](xxhash),
//!   [FNV-1a](fnv), [Jenkins lookup3](jenkins) (the paper's source), and
//!   [SipHash-2-4](siphash);
//! * [seeded hash families](family) that derive arbitrarily many independent
//!   functions from one master seed, plus the Kirsch–Mitzenmacher
//!   double-hashing family used as a related-work baseline (§2.1);
//! * the paper's [randomness test](randomness) (per-bit balance), plus
//!   avalanche and chi-square uniformity tests.
//!
//! All functions hash byte strings; the paper's elements are 13-byte 5-tuple
//! flow IDs, but nothing here depends on the key length.
//!
//! ```
//! use shbf_hash::{HashAlg, HashFamily, SeededFamily};
//!
//! let family = SeededFamily::new(HashAlg::Murmur3, 0xC0FFEE, 8);
//! let h0 = family.hash(0, b"10.0.0.1:443 -> 10.0.0.2:8080 tcp");
//! let h1 = family.hash(1, b"10.0.0.1:443 -> 10.0.0.2:8080 tcp");
//! assert_ne!(h0, h1); // independent functions
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod family;
pub mod fnv;
pub mod jenkins;
pub mod mix;
pub mod murmur3;
pub mod randomness;
pub mod siphash;
pub mod xxhash;

pub use digest::{Digest128, OneShotFamily};
pub use family::{
    DoubleHashFamily, FamilyKind, HashAlg, HashFamily, PreparedKey, QueryFamily, SeededFamily,
};
pub use mix::{fmix64, range_reduce, splitmix64};

/// A seeded 64-bit hash function over byte strings.
///
/// Implementations must be pure: the same `(seed, data)` pair always produces
/// the same output. Outputs are expected to be uniformly distributed over
/// `u64`; [`randomness::balance_profile`] can verify this empirically.
pub trait Hasher64 {
    /// Hashes `data` to a 64-bit value.
    fn hash64(&self, data: &[u8]) -> u64;

    /// A short human-readable algorithm name (for reports and error messages).
    fn name(&self) -> &'static str;
}

/// Convenience: hash `data` with algorithm `alg` and the given `seed`.
///
/// This is the single dispatch point used by [`SeededFamily`]; keeping it a
/// plain function (rather than trait objects) lets the optimizer inline the
/// hot path inside filter queries.
#[inline]
pub fn hash_seeded(alg: HashAlg, seed: u64, data: &[u8]) -> u64 {
    match alg {
        HashAlg::Murmur3 => murmur3::murmur3_x64_128(data, seed).0,
        HashAlg::Murmur3_32 => {
            // Widen the 32-bit variant by hashing with two derived seeds.
            let lo = murmur3::murmur3_x86_32(data, seed as u32) as u64;
            let hi = murmur3::murmur3_x86_32(data, (seed >> 32) as u32 ^ 0x9E37_79B9) as u64;
            (hi << 32) | lo
        }
        HashAlg::XxHash64 => xxhash::xxh64(data, seed),
        HashAlg::Fnv1a => fnv::fnv1a64_seeded(data, seed),
        HashAlg::Lookup3 => jenkins::lookup3_64(data, seed),
        HashAlg::SipHash24 => siphash::siphash24(data, seed, mix::splitmix64(seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_are_deterministic() {
        let data = b"deterministic check";
        for alg in HashAlg::ALL {
            assert_eq!(
                hash_seeded(alg, 42, data),
                hash_seeded(alg, 42, data),
                "{alg:?} must be pure"
            );
        }
    }

    #[test]
    fn seeds_change_output() {
        let data = b"seed sensitivity";
        for alg in HashAlg::ALL {
            assert_ne!(
                hash_seeded(alg, 1, data),
                hash_seeded(alg, 2, data),
                "{alg:?} must depend on the seed"
            );
        }
    }

    #[test]
    fn algorithms_disagree_with_each_other() {
        // Not a correctness requirement, but if two "different" algorithms
        // collide on arbitrary inputs something is wired wrong.
        let data = b"cross-algorithm";
        let outs: Vec<u64> = HashAlg::ALL
            .iter()
            .map(|&a| hash_seeded(a, 7, data))
            .collect();
        for i in 0..outs.len() {
            for j in (i + 1)..outs.len() {
                assert_ne!(
                    outs[i],
                    outs[j],
                    "{:?} vs {:?}",
                    HashAlg::ALL[i],
                    HashAlg::ALL[j]
                );
            }
        }
    }
}
