//! xxHash64 (Yann Collet), implemented from the specification.
//!
//! Very fast on short keys (a 13-byte flow ID is a single 8-byte lane plus a
//! 4-byte lane plus one byte), which makes it a good choice for the
//! query-speed experiments (Fig. 9 / 10(c) / 11(c)).

const P1: u64 = 0x9E37_79B1_85EB_CA87;
const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const P3: u64 = 0x1656_67B1_9E37_79F9;
const P4: u64 = 0x85EB_CA77_C2B2_AE63;
const P5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(P2))
        .rotate_left(31)
        .wrapping_mul(P1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val)).wrapping_mul(P1).wrapping_add(P4)
}

#[inline]
fn read_u64_le(chunk: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(chunk);
    u64::from_le_bytes(buf)
}

#[inline]
fn read_u32_le(chunk: &[u8]) -> u32 {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(chunk);
    u32::from_le_bytes(buf)
}

/// xxHash64 of `data` with the given `seed`.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut h: u64;
    let mut rest = data;

    if len >= 32 {
        let mut v1 = seed.wrapping_add(P1).wrapping_add(P2);
        let mut v2 = seed.wrapping_add(P2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(P1);

        while rest.len() >= 32 {
            v1 = round(v1, read_u64_le(&rest[0..8]));
            v2 = round(v2, read_u64_le(&rest[8..16]));
            v3 = round(v3, read_u64_le(&rest[16..24]));
            v4 = round(v4, read_u64_le(&rest[24..32]));
            rest = &rest[32..];
        }

        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(P5);
    }

    h = h.wrapping_add(len as u64);

    while rest.len() >= 8 {
        h ^= round(0, read_u64_le(&rest[0..8]));
        h = h.rotate_left(27).wrapping_mul(P1).wrapping_add(P4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h ^= u64::from(read_u32_le(&rest[0..4])).wrapping_mul(P1);
        h = h.rotate_left(23).wrapping_mul(P2).wrapping_add(P3);
        rest = &rest[4..];
    }
    for &b in rest {
        h ^= u64::from(b).wrapping_mul(P5);
        h = h.rotate_left(11).wrapping_mul(P1);
    }

    // Avalanche.
    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^= h >> 32;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from the xxHash repository's test suite.
    #[test]
    fn xxh64_reference_vectors() {
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"a", 0), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxh64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
    }

    #[test]
    fn xxh64_long_input_exercises_lane_path() {
        // >= 32 bytes takes the 4-accumulator path; make sure it is distinct
        // from a truncated version and deterministic.
        let data: Vec<u8> = (0..100u8).collect();
        let a = xxh64(&data, 12345);
        assert_eq!(a, xxh64(&data, 12345));
        assert_ne!(a, xxh64(&data[..32], 12345));
        assert_ne!(a, xxh64(&data, 12346));
    }

    #[test]
    fn xxh64_every_length_up_to_40_distinct() {
        let data = [0x5Au8; 40];
        let mut seen = std::collections::HashSet::new();
        for l in 0..=40 {
            assert!(seen.insert(xxh64(&data[..l], 9)), "len {l} collided");
        }
    }
}
