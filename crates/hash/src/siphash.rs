//! SipHash-2-4 (Aumasson & Bernstein), implemented from the reference paper.
//!
//! Included as the "cryptographically keyed" end of the hash-quality spectrum;
//! slower than xxHash/Murmur on short keys but with the strongest uniformity
//! guarantees, which makes it a useful control in the randomness-test suite.

#[inline]
fn sip_round(v0: &mut u64, v1: &mut u64, v2: &mut u64, v3: &mut u64) {
    *v0 = v0.wrapping_add(*v1);
    *v1 = v1.rotate_left(13);
    *v1 ^= *v0;
    *v0 = v0.rotate_left(32);
    *v2 = v2.wrapping_add(*v3);
    *v3 = v3.rotate_left(16);
    *v3 ^= *v2;
    *v0 = v0.wrapping_add(*v3);
    *v3 = v3.rotate_left(21);
    *v3 ^= *v0;
    *v2 = v2.wrapping_add(*v1);
    *v1 = v1.rotate_left(17);
    *v1 ^= *v2;
    *v2 = v2.rotate_left(32);
}

/// SipHash-2-4 of `data` under the 128-bit key `(k0, k1)`.
pub fn siphash24(data: &[u8], k0: u64, k1: u64) -> u64 {
    let mut v0 = 0x736F_6D65_7073_6575 ^ k0;
    let mut v1 = 0x646F_7261_6E64_6F6D ^ k1;
    let mut v2 = 0x6C79_6765_6E65_7261 ^ k0;
    let mut v3 = 0x7465_6462_7974_6573 ^ k1;

    let len = data.len();
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(chunk);
        let m = u64::from_le_bytes(buf);
        v3 ^= m;
        sip_round(&mut v0, &mut v1, &mut v2, &mut v3);
        sip_round(&mut v0, &mut v1, &mut v2, &mut v3);
        v0 ^= m;
    }

    // Last block: remaining bytes plus the length in the top byte.
    let rem = chunks.remainder();
    let mut last = (len as u64) << 56;
    for (i, &b) in rem.iter().enumerate() {
        last |= u64::from(b) << (i * 8);
    }
    v3 ^= last;
    sip_round(&mut v0, &mut v1, &mut v2, &mut v3);
    sip_round(&mut v0, &mut v1, &mut v2, &mut v3);
    v0 ^= last;

    v2 ^= 0xFF;
    for _ in 0..4 {
        sip_round(&mut v0, &mut v1, &mut v2, &mut v3);
    }
    v0 ^ v1 ^ v2 ^ v3
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First entries of the reference test-vector table from the SipHash
    /// paper: key = 00 01 02 ... 0f, input = [], [0], [0,1], ...
    #[test]
    fn siphash24_reference_vectors() {
        let k0 = u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]);
        let k1 = u64::from_le_bytes([8, 9, 10, 11, 12, 13, 14, 15]);
        assert_eq!(siphash24(b"", k0, k1), 0x726F_DB47_DD0E_0E31);
        assert_eq!(siphash24(&[0u8], k0, k1), 0x74F8_39C5_93DC_67FD);
        let input: Vec<u8> = (0..8u8).collect();
        assert_eq!(siphash24(&input, k0, k1), 0x93F5_F579_9A93_2462);
    }

    #[test]
    fn key_sensitivity() {
        assert_ne!(siphash24(b"msg", 1, 2), siphash24(b"msg", 1, 3));
        assert_ne!(siphash24(b"msg", 1, 2), siphash24(b"msg", 2, 2));
    }

    #[test]
    fn length_is_part_of_the_state() {
        // Trailing zero bytes must still change the hash (length padding).
        assert_ne!(siphash24(&[0u8; 3], 9, 9), siphash24(&[0u8; 4], 9, 9));
    }
}
