//! Empirical randomness tests for hash functions.
//!
//! The paper's acceptance procedure (§6.1): hash many distinct elements, and
//! for every output-bit position compute the fraction of 1s; a good function
//! shows ≈ 0.5 everywhere. "Out of all hash functions, 18 passed our
//! randomness test." This module reproduces that test and adds two sharper
//! ones (avalanche and chi-square bucket uniformity) so the suite can vouch
//! for every algorithm shipped in this crate.

/// Per-bit balance profile: `profile[b]` is the fraction of sampled outputs
/// with bit `b` set.
pub fn balance_profile<F: Fn(&[u8]) -> u64>(hash: F, samples: usize) -> [f64; 64] {
    let mut ones = [0u64; 64];
    let mut buf = [0u8; 16];
    for i in 0..samples {
        // Distinct structured inputs: counter + a light permutation, similar
        // in spirit to hashing distinct flow IDs.
        buf[..8].copy_from_slice(&(i as u64).to_le_bytes());
        buf[8..].copy_from_slice(&(i as u64).wrapping_mul(0x9E37_79B9).to_le_bytes());
        let h = hash(&buf);
        for (b, count) in ones.iter_mut().enumerate() {
            *count += (h >> b) & 1;
        }
    }
    let mut profile = [0.0f64; 64];
    for (b, count) in ones.iter().enumerate() {
        profile[b] = *count as f64 / samples as f64;
    }
    profile
}

/// The paper's pass criterion: every bit's frequency of 1s within
/// `0.5 ± tolerance`.
pub fn passes_balance_test<F: Fn(&[u8]) -> u64>(hash: F, samples: usize, tolerance: f64) -> bool {
    balance_profile(hash, samples)
        .iter()
        .all(|&p| (p - 0.5).abs() <= tolerance)
}

/// Avalanche matrix summary: flipping any single input bit should flip each
/// output bit with probability ≈ 0.5. Returns `(min, max)` flip probability
/// across all (input-bit, output-bit) pairs for `samples` base inputs of
/// `input_len` bytes.
pub fn avalanche_extremes<F: Fn(&[u8]) -> u64>(
    hash: F,
    input_len: usize,
    samples: usize,
) -> (f64, f64) {
    assert!(input_len > 0 && input_len <= 64, "input_len in 1..=64");
    let in_bits = input_len * 8;
    // flips[i][o] = number of samples where flipping input bit i flipped output bit o
    let mut flips = vec![[0u32; 64]; in_bits];
    let mut base = vec![0u8; input_len];

    let mut state = 0x1234_5678_9ABC_DEF0u64;
    for _ in 0..samples {
        for byte in base.iter_mut() {
            state = crate::mix::splitmix64(state);
            *byte = state as u8;
        }
        let h0 = hash(&base);
        for i in 0..in_bits {
            base[i / 8] ^= 1 << (i % 8);
            let h1 = hash(&base);
            base[i / 8] ^= 1 << (i % 8);
            let diff = h0 ^ h1;
            for (o, cell) in flips[i].iter_mut().enumerate() {
                *cell += ((diff >> o) & 1) as u32;
            }
        }
    }

    let mut min = 1.0f64;
    let mut max = 0.0f64;
    for row in &flips {
        for &cell in row.iter() {
            let p = f64::from(cell) / samples as f64;
            min = min.min(p);
            max = max.max(p);
        }
    }
    (min, max)
}

/// Chi-square statistic of hash outputs bucketed into `buckets` bins
/// (`h % buckets`), over `samples` distinct inputs.
///
/// For a uniform hash the statistic follows χ²(buckets − 1); the caller can
/// compare against [`chi_square_critical_001`].
pub fn chi_square_uniformity<F: Fn(&[u8]) -> u64>(hash: F, buckets: usize, samples: usize) -> f64 {
    assert!(buckets >= 2);
    let mut counts = vec![0u64; buckets];
    let mut buf = [0u8; 13]; // 13 bytes: same width as a 5-tuple flow ID
    for i in 0..samples {
        buf[..8].copy_from_slice(&(i as u64).to_le_bytes());
        buf[8..12].copy_from_slice(&(i as u32).wrapping_mul(2_654_435_761).to_le_bytes());
        buf[12] = (i % 251) as u8;
        let h = hash(&buf);
        counts[(h % buckets as u64) as usize] += 1;
    }
    let expected = samples as f64 / buckets as f64;
    counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum()
}

/// Approximate 0.1% critical value of the χ² distribution with `dof` degrees
/// of freedom (Wilson–Hilferty approximation) — generous enough that a good
/// hash essentially never trips it while a byte-truncated or constant hash
/// always does.
pub fn chi_square_critical_001(dof: usize) -> f64 {
    // χ²_p(k) ≈ k (1 − 2/(9k) + z_p sqrt(2/(9k)))³, z_0.999 ≈ 3.0902
    let k = dof as f64;
    let z = 3.0902;
    let t = 1.0 - 2.0 / (9.0 * k) + z * (2.0 / (9.0 * k)).sqrt();
    k * t * t * t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hash_seeded, HashAlg};

    #[test]
    fn all_shipped_algorithms_pass_the_papers_balance_test() {
        for alg in HashAlg::ALL {
            assert!(
                passes_balance_test(|d| hash_seeded(alg, 0xA5A5, d), 20_000, 0.02),
                "{alg:?} failed the per-bit balance test"
            );
        }
    }

    #[test]
    fn constant_hash_fails_balance() {
        assert!(!passes_balance_test(|_| 0, 1000, 0.02));
        assert!(!passes_balance_test(|_| u64::MAX, 1000, 0.02));
    }

    #[test]
    fn truncated_hash_fails_balance() {
        // A hash that only fills the low 32 bits leaves the top half at 0.
        let bad = |d: &[u8]| u64::from(crate::murmur3::murmur3_x86_32(d, 1));
        assert!(!passes_balance_test(bad, 5_000, 0.02));
    }

    #[test]
    fn murmur3_avalanche_is_near_half() {
        let (min, max) = avalanche_extremes(|d| hash_seeded(HashAlg::Murmur3, 7, d), 13, 600);
        assert!(min > 0.35, "min avalanche {min}");
        assert!(max < 0.65, "max avalanche {max}");
    }

    #[test]
    fn xxhash_avalanche_is_near_half() {
        let (min, max) = avalanche_extremes(|d| hash_seeded(HashAlg::XxHash64, 7, d), 13, 600);
        assert!(min > 0.35, "min avalanche {min}");
        assert!(max < 0.65, "max avalanche {max}");
    }

    #[test]
    fn chi_square_accepts_good_rejects_bad() {
        let crit = chi_square_critical_001(255);
        for alg in HashAlg::ALL {
            let stat = chi_square_uniformity(|d| hash_seeded(alg, 3, d), 256, 50_000);
            assert!(stat < crit, "{alg:?}: χ²={stat} ≥ {crit}");
        }
        // Low-entropy "hash": bucket index loops over only 16 values.
        let stat = chi_square_uniformity(|d| u64::from(d[0] % 16), 256, 50_000);
        assert!(stat > crit);
    }

    #[test]
    fn critical_value_is_sane() {
        // χ²_0.001(255) is around 320-330.
        let c = chi_square_critical_001(255);
        assert!(c > 300.0 && c < 350.0, "critical {c}");
    }
}
