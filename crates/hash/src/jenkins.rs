//! Bob Jenkins' lookup3 (`hashlittle2`), implemented from `lookup3.c`
//! (May 2006, public domain).
//!
//! This is the hash family the ShBF authors actually drew from: their
//! evaluation (§6.1) collected functions from burtleburtle.net — Jenkins'
//! site — and kept those passing a per-bit balance test. `hashlittle2`
//! produces two 32-bit values which we combine into one `u64`.

#[inline]
fn rot(x: u32, k: u32) -> u32 {
    x.rotate_left(k)
}

/// lookup3 `mix()`: reversible mixing of the three lanes.
#[inline]
fn mix(a: &mut u32, b: &mut u32, c: &mut u32) {
    *a = a.wrapping_sub(*c);
    *a ^= rot(*c, 4);
    *c = c.wrapping_add(*b);
    *b = b.wrapping_sub(*a);
    *b ^= rot(*a, 6);
    *a = a.wrapping_add(*c);
    *c = c.wrapping_sub(*b);
    *c ^= rot(*b, 8);
    *b = b.wrapping_add(*a);
    *a = a.wrapping_sub(*c);
    *a ^= rot(*c, 16);
    *c = c.wrapping_add(*b);
    *b = b.wrapping_sub(*a);
    *b ^= rot(*a, 19);
    *a = a.wrapping_add(*c);
    *c = c.wrapping_sub(*b);
    *c ^= rot(*b, 4);
    *b = b.wrapping_add(*a);
}

/// lookup3 `final()`: irreversible finalization of the three lanes.
#[inline]
fn final_mix(a: &mut u32, b: &mut u32, c: &mut u32) {
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 14));
    *a ^= *c;
    *a = a.wrapping_sub(rot(*c, 11));
    *b ^= *a;
    *b = b.wrapping_sub(rot(*a, 25));
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 16));
    *a ^= *c;
    *a = a.wrapping_sub(rot(*c, 4));
    *b ^= *a;
    *b = b.wrapping_sub(rot(*a, 14));
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 24));
}

#[inline]
fn read_lane(data: &[u8]) -> u32 {
    let mut v = 0u32;
    for (i, &byte) in data.iter().take(4).enumerate() {
        v |= u32::from(byte) << (i * 8);
    }
    v
}

/// `hashlittle2`: returns `(pc, pb)` — two 32-bit hashes of `data`.
///
/// `pc_seed` and `pb_seed` are the in/out parameters of the C version.
pub fn hashlittle2(data: &[u8], pc_seed: u32, pb_seed: u32) -> (u32, u32) {
    let len = data.len();
    let init = 0xDEAD_BEEFu32
        .wrapping_add(len as u32)
        .wrapping_add(pc_seed);
    let mut a = init;
    let mut b = init;
    let mut c = init.wrapping_add(pb_seed);

    let mut rest = data;
    // All but the last (possibly partial) 12-byte block.
    while rest.len() > 12 {
        a = a.wrapping_add(read_lane(&rest[0..4]));
        b = b.wrapping_add(read_lane(&rest[4..8]));
        c = c.wrapping_add(read_lane(&rest[8..12]));
        mix(&mut a, &mut b, &mut c);
        rest = &rest[12..];
    }

    // Final block: lookup3 treats length 0 specially (no final mix).
    if rest.is_empty() {
        return (c, b);
    }
    a = a.wrapping_add(read_lane(rest));
    if rest.len() > 4 {
        b = b.wrapping_add(read_lane(&rest[4..]));
    }
    if rest.len() > 8 {
        c = c.wrapping_add(read_lane(&rest[8..]));
    }
    final_mix(&mut a, &mut b, &mut c);
    (c, b)
}

/// 64-bit convenience wrapper: both lookup3 outputs concatenated; the seed's
/// halves feed `pc`/`pb`.
#[inline]
pub fn lookup3_64(data: &[u8], seed: u64) -> u64 {
    let (pc, pb) = hashlittle2(data, seed as u32, (seed >> 32) as u32);
    (u64::from(pb) << 32) | u64::from(pc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_returns_seed_derived_constants() {
        // From lookup3.c: for len 0 the function returns the initialized
        // lanes untouched: c = 0xdeadbeef + pc + pb, b = 0xdeadbeef + pc.
        let (pc, pb) = hashlittle2(b"", 0, 0);
        assert_eq!(pc, 0xDEAD_BEEF);
        assert_eq!(pb, 0xDEAD_BEEF);
        let (pc, pb) = hashlittle2(b"", 1, 2);
        assert_eq!(pb, 0xDEAD_BEEF + 1);
        assert_eq!(pc, 0xDEAD_BEEF + 1 + 2);
    }

    #[test]
    fn block_boundaries_are_distinct() {
        // 12, 13, 24, 25 bytes exercise the loop/tail interplay.
        let data = [0x33u8; 25];
        let mut seen = std::collections::HashSet::new();
        for l in [0usize, 1, 4, 5, 8, 9, 11, 12, 13, 23, 24, 25] {
            assert!(seen.insert(lookup3_64(&data[..l], 7)), "len {l} collided");
        }
    }

    #[test]
    fn seed_halves_both_matter() {
        let d = b"seed lanes";
        assert_ne!(lookup3_64(d, 0x0000_0001), lookup3_64(d, 0x0000_0002));
        assert_ne!(
            lookup3_64(d, 0x0000_0001_0000_0000),
            lookup3_64(d, 0x0000_0002_0000_0000)
        );
    }
}
