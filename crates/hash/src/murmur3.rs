//! MurmurHash3 (Austin Appleby, public domain): the x64-128 and x86-32
//! variants, implemented from the reference `MurmurHash3.cpp`.
//!
//! `murmur3_x64_128` is the workhorse of this repository: one invocation
//! yields 128 bits, and the filters consume its low 64 bits per seeded
//! function (the paper counts one such invocation as one hash computation).

use crate::mix::{fmix32, fmix64};

const C1: u64 = 0x87C3_7B91_1142_53D5;
const C2: u64 = 0x4CF5_AD43_2745_937F;

#[inline]
fn read_u64_le(chunk: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(chunk);
    u64::from_le_bytes(buf)
}

#[inline]
fn read_u32_le(chunk: &[u8]) -> u32 {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(chunk);
    u32::from_le_bytes(buf)
}

/// MurmurHash3 x64-128. Returns the two 64-bit halves `(h1, h2)`.
pub fn murmur3_x64_128(data: &[u8], seed: u64) -> (u64, u64) {
    let len = data.len();
    let n_blocks = len / 16;

    let mut h1 = seed;
    let mut h2 = seed;

    // Body: 16-byte blocks.
    for block in data.chunks_exact(16) {
        let mut k1 = read_u64_le(&block[0..8]);
        let mut k2 = read_u64_le(&block[8..16]);

        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;

        h1 = h1.rotate_left(27);
        h1 = h1.wrapping_add(h2);
        h1 = h1.wrapping_mul(5).wrapping_add(0x52DC_E729);

        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;

        h2 = h2.rotate_left(31);
        h2 = h2.wrapping_add(h1);
        h2 = h2.wrapping_mul(5).wrapping_add(0x3849_5AB5);
    }

    // Tail: up to 15 bytes.
    let tail = &data[n_blocks * 16..];
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;
    for i in (8..tail.len()).rev() {
        k2 ^= u64::from(tail[i]) << ((i - 8) * 8);
    }
    if tail.len() > 8 {
        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
    }
    for i in (0..tail.len().min(8)).rev() {
        k1 ^= u64::from(tail[i]) << (i * 8);
    }
    if !tail.is_empty() {
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    // Finalization.
    h1 ^= len as u64;
    h2 ^= len as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);

    (h1, h2)
}

/// MurmurHash3 x86-32.
pub fn murmur3_x86_32(data: &[u8], seed: u32) -> u32 {
    const C1_32: u32 = 0xCC9E_2D51;
    const C2_32: u32 = 0x1B87_3593;

    let len = data.len();
    let mut h = seed;

    for block in data.chunks_exact(4) {
        let mut k = read_u32_le(block);
        k = k.wrapping_mul(C1_32);
        k = k.rotate_left(15);
        k = k.wrapping_mul(C2_32);
        h ^= k;
        h = h.rotate_left(13);
        h = h.wrapping_mul(5).wrapping_add(0xE654_6B64);
    }

    let tail = &data[len - len % 4..];
    let mut k: u32 = 0;
    for i in (0..tail.len()).rev() {
        k ^= u32::from(tail[i]) << (i * 8);
    }
    if !tail.is_empty() {
        k = k.wrapping_mul(C1_32);
        k = k.rotate_left(15);
        k = k.wrapping_mul(C2_32);
        h ^= k;
    }

    h ^= len as u32;
    fmix32(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SMHasher-documented vectors for the x86-32 variant.
    #[test]
    fn murmur3_32_reference_vectors() {
        assert_eq!(murmur3_x86_32(b"", 0), 0);
        assert_eq!(murmur3_x86_32(b"", 1), 0x514E_28B7);
        // SMHasher verification convention: empty input, seed 0xffffffff.
        assert_eq!(murmur3_x86_32(b"", 0xFFFF_FFFF), 0x81F1_6F39);
    }

    #[test]
    fn murmur3_128_empty_seed0_is_zero() {
        // With seed 0 and empty input every operation is on zeros; the
        // reference implementation returns (0, 0).
        assert_eq!(murmur3_x64_128(b"", 0), (0, 0));
    }

    #[test]
    fn murmur3_128_block_and_tail_paths_differ() {
        // 16-byte input exercises only the body; 17-byte adds a tail byte.
        let a = murmur3_x64_128(&[7u8; 16], 99);
        let b = murmur3_x64_128(&[7u8; 17], 99);
        assert_ne!(a, b);
    }

    #[test]
    fn murmur3_128_all_tail_lengths_distinct() {
        // Every tail length 0..=15 must hit its own mixing path.
        let data = [0xABu8; 32];
        let mut outs = std::collections::HashSet::new();
        for l in 0..=31 {
            assert!(
                outs.insert(murmur3_x64_128(&data[..l], 5)),
                "len {l} collided"
            );
        }
    }

    #[test]
    fn murmur3_128_halves_are_independent_enough() {
        let (h1, h2) = murmur3_x64_128(b"13-byte flowid", 0xDEAD_BEEF);
        assert_ne!(h1, h2);
        assert!(((h1 ^ h2).count_ones() as i32 - 32).abs() < 28);
    }
}
