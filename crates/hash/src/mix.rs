//! Integer finalizers / mixers used to derive seeds and finish hash states.

/// SplitMix64 step: a full-avalanche permutation of `u64`.
///
/// Used to derive per-function seeds for [`crate::SeededFamily`] from a master
/// seed, and to key SipHash from a single `u64`. Constants are from Steele,
/// Lea & Flood, "Fast Splittable Pseudorandom Number Generators" (OOPSLA'14).
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// MurmurHash3's 64-bit finalizer (`fmix64`): full avalanche, bijective.
#[inline]
pub fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    k ^= k >> 33;
    k = k.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    k ^= k >> 33;
    k
}

/// Maps a uniform 64-bit hash onto `0..n` without the cost of a 64-bit
/// division (Lemire's multiply-shift reduction).
///
/// Statistically equivalent to `h % n` for filter addressing (bias is
/// O(n/2⁶⁴)); used by every filter in the workspace so that range reduction
/// never dominates the hash-computation costs the paper reasons about.
#[inline]
pub fn range_reduce(h: u64, n: usize) -> usize {
    ((u128::from(h) * n as u128) >> 64) as usize
}

/// MurmurHash3's 32-bit finalizer (`fmix32`).
#[inline]
pub fn fmix32(mut h: u32) -> u32 {
    h ^= h >> 16;
    h = h.wrapping_mul(0x85EB_CA6B);
    h ^= h >> 13;
    h = h.wrapping_mul(0xC2B2_AE35);
    h ^= h >> 16;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_not_identity_and_spreads() {
        // Consecutive inputs should produce wildly different outputs.
        let a = splitmix64(0);
        let b = splitmix64(1);
        assert_ne!(a, b);
        assert!(
            (a ^ b).count_ones() > 16,
            "poor diffusion: {a:#x} vs {b:#x}"
        );
    }

    #[test]
    fn fmix64_is_bijective_on_samples() {
        // fmix64 is invertible; at minimum distinct inputs map to distinct outputs.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(fmix64(i)));
        }
    }

    #[test]
    fn fmix32_known_fixed_point_zero() {
        assert_eq!(fmix32(0), 0);
        assert_eq!(fmix64(0), 0);
        assert_ne!(fmix32(1), 1);
    }

    #[test]
    fn range_reduce_stays_in_range_and_is_roughly_uniform() {
        let n = 1000usize;
        let mut counts = vec![0u32; n];
        let mut h = 0u64;
        for _ in 0..200_000 {
            h = splitmix64(h);
            let r = range_reduce(h, n);
            assert!(r < n);
            counts[r] += 1;
        }
        // Pearson χ² against the uniform expectation (200 per bucket):
        // E[χ²] = 999, σ = √(2·999) ≈ 45; 1200 is a ≈4.5σ ceiling. A
        // min/max check would be too noisy (extremes of 1000 Poisson(200)
        // draws routinely span ±3.3σ).
        let expected = 200_000.0 / n as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = f64::from(c) - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 1200.0, "chi2 = {chi2}");
    }

    #[test]
    fn range_reduce_edges() {
        assert_eq!(range_reduce(0, 100), 0);
        assert_eq!(range_reduce(u64::MAX, 100), 99);
        assert_eq!(range_reduce(u64::MAX / 2, 2), 0);
        assert_eq!(range_reduce(u64::MAX / 2 + 1, 2), 1);
    }
}
