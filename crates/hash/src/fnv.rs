//! FNV-1a: the Fowler–Noll–Vo hash, 64-bit variant.
//!
//! Small, branch-free, and byte-serial — the classic "cheap" hash the paper's
//! related work contrasts with heavier functions. Also used internally to build
//! a fast `std::hash::BuildHasher` for the construction-time hash tables of
//! ShBF_A (the paper's `T1`/`T2`, §4.1).

use crate::mix::splitmix64;

/// FNV-1a 64-bit offset basis.
pub const FNV64_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV64_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Unseeded FNV-1a over `data` (the textbook definition).
#[inline]
pub fn fnv1a64(data: &[u8]) -> u64 {
    fnv1a64_with_basis(data, FNV64_OFFSET)
}

/// Seeded FNV-1a: the seed perturbs the offset basis through SplitMix64 so
/// different seeds yield effectively independent functions.
#[inline]
pub fn fnv1a64_seeded(data: &[u8], seed: u64) -> u64 {
    let basis = if seed == 0 {
        FNV64_OFFSET
    } else {
        FNV64_OFFSET ^ splitmix64(seed)
    };
    // Post-mix: raw FNV has weak high bits for short keys; fmix64 fixes the
    // per-bit balance the paper's randomness test demands.
    crate::mix::fmix64(fnv1a64_with_basis(data, basis))
}

#[inline]
fn fnv1a64_with_basis(data: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV64_PRIME);
    }
    h
}

/// A `std::hash::Hasher` adapter so FNV-1a can back `HashMap`/`HashSet`
/// (faster than SipHash for the short keys used during filter construction;
/// HashDoS is not a concern for offline construction).
#[derive(Debug, Clone, Copy)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV64_OFFSET)
    }
}

impl std::hash::Hasher for FnvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV64_PRIME);
        }
    }
}

/// `BuildHasher` for [`FnvHasher`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FnvBuildHasher;

impl std::hash::BuildHasher for FnvBuildHasher {
    type Hasher = FnvHasher;

    #[inline]
    fn build_hasher(&self) -> FnvHasher {
        FnvHasher::default()
    }
}

/// `HashMap` keyed by FNV-1a — used for construction-time element tables.
pub type FnvHashMap<K, V> = std::collections::HashMap<K, V, FnvBuildHasher>;
/// `HashSet` keyed by FNV-1a.
pub type FnvHashSet<K> = std::collections::HashSet<K, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from the FNV specification (Noll's test suite).
    #[test]
    fn fnv1a64_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_F739_67E8);
    }

    #[test]
    fn seed_zero_is_mixed_textbook_value() {
        // Seeded variant post-mixes, so it differs from the raw value but is
        // still deterministic.
        assert_eq!(
            fnv1a64_seeded(b"abc", 0),
            crate::mix::fmix64(fnv1a64(b"abc"))
        );
    }

    #[test]
    fn hashmap_adapter_matches_raw_hash() {
        use std::hash::Hasher;
        let mut h = FnvHasher::default();
        h.write(b"foobar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn fnv_hashmap_basic_use() {
        let mut m: FnvHashMap<Vec<u8>, u32> = FnvHashMap::default();
        m.insert(b"k".to_vec(), 1);
        assert_eq!(m.get(b"k".as_slice()), Some(&1));
    }
}
