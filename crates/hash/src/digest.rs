//! Digest-once hashing: one base-hash pass per key, all filter indexes
//! derived by integer mixing.
//!
//! [`SeededFamily`](crate::SeededFamily) re-runs the full base algorithm for
//! every member function, which matches the paper's cost accounting but means
//! a `k = 8` ShBF_M query performs `k/2 + 1 = 5` complete Murmur3 passes over
//! the key. [`Digest128`] instead captures the two 64-bit halves of a
//! *single* MurmurHash3 x64-128 invocation and derives arbitrarily many
//! member values with a SplitMix64 finalizer over a double-hashing walk:
//!
//! ```text
//! g_i(e) = splitmix64( h1(e) + i · (h2(e) | 1) )
//! ```
//!
//! The affine walk gives every index a distinct 64-bit input (the odd
//! multiplier makes `i ↦ h1 + i·h2` injective over `u64`), and the
//! full-avalanche finalizer removes the linear structure that plain
//! Kirsch–Mitzenmacher double hashing pays for with a slightly worse FPR.
//! One hash computation per key, in the paper's unit.

use crate::mix::splitmix64;
use crate::murmur3::murmur3_x64_128;

/// The 128-bit digest of one key: both halves of one MurmurHash3 x64-128
/// pass. All member-function values are pure functions of this digest, so a
/// batch pipeline can hash each key exactly once, stash the digest, and
/// derive positions later without touching the key bytes again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest128 {
    h1: u64,
    /// Second half, forced odd so the index walk is injective.
    h2: u64,
}

impl Digest128 {
    /// Digests `item` under `seed` (one base-hash computation).
    #[inline]
    pub fn compute(seed: u64, item: &[u8]) -> Self {
        let (h1, h2) = murmur3_x64_128(item, seed);
        Digest128 { h1, h2: h2 | 1 }
    }

    /// The `index`-th derived member value (mixing only, no re-hash).
    #[inline]
    pub fn select(&self, index: usize) -> u64 {
        splitmix64(self.h1.wrapping_add((index as u64).wrapping_mul(self.h2)))
    }
}

/// A hash family whose members all derive from one [`Digest128`] per key.
///
/// Drop-in alternative to [`SeededFamily`](crate::SeededFamily): same
/// `hash(index, item)` surface, but `computations_for(k)` is 1 — the §1.2.1
/// cost of a whole query collapses to a single base-hash pass. Filters that
/// know the concrete type should call [`OneShotFamily::digest`] once and
/// [`Digest128::select`] per index; the trait method recomputes the digest
/// on every call and exists only for generic call sites.
#[derive(Debug, Clone)]
pub struct OneShotFamily {
    seed: u64,
}

impl OneShotFamily {
    /// Creates the family from a master seed.
    pub fn new(master_seed: u64) -> Self {
        OneShotFamily {
            seed: splitmix64(master_seed),
        }
    }

    /// The derived internal seed (exposed for serialization checks).
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Digests one key: the single hash computation of a whole query.
    #[inline]
    pub fn digest(&self, item: &[u8]) -> Digest128 {
        Digest128::compute(self.seed, item)
    }
}

impl crate::HashFamily for OneShotFamily {
    #[inline]
    fn hash(&self, index: usize, item: &[u8]) -> u64 {
        self.digest(item).select(index)
    }

    fn computations_for(&self, count: usize) -> usize {
        count.min(1)
    }

    fn name(&self) -> &'static str {
        "one-shot(murmur3-x64-128)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HashFamily;

    #[test]
    fn digest_and_trait_hash_agree() {
        let fam = OneShotFamily::new(42);
        let d = fam.digest(b"element");
        for i in 0..16 {
            assert_eq!(fam.hash(i, b"element"), d.select(i));
        }
    }

    #[test]
    fn members_differ_and_are_reproducible() {
        let a = OneShotFamily::new(7);
        let b = OneShotFamily::new(7);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            let h = a.hash(i, b"item");
            assert_eq!(h, b.hash(i, b"item"));
            assert!(seen.insert(h), "member {i} collided");
        }
    }

    #[test]
    fn one_computation_per_key() {
        let fam = OneShotFamily::new(5);
        assert_eq!(fam.computations_for(0), 0);
        assert_eq!(fam.computations_for(1), 1);
        assert_eq!(fam.computations_for(9), 1);
    }

    #[test]
    fn derived_values_are_balanced() {
        // Per-bit balance over many (key, index) pairs: each output bit
        // should be ~50% ones, the paper's §6.1 sanity bar.
        let fam = OneShotFamily::new(99);
        let mut ones = [0u32; 64];
        let samples = 4000u64;
        for s in 0..samples / 4 {
            let d = fam.digest(&s.to_le_bytes());
            for i in 0..4 {
                let h = d.select(i);
                for (b, slot) in ones.iter_mut().enumerate() {
                    *slot += ((h >> b) & 1) as u32;
                }
            }
        }
        for (b, &count) in ones.iter().enumerate() {
            let frac = f64::from(count) / samples as f64;
            assert!((0.45..0.55).contains(&frac), "bit {b} balance {frac:.3}");
        }
    }
}
