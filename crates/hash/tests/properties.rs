//! Property suites for the hash substrate (proptest).

use proptest::collection::vec;
use proptest::prelude::*;

use shbf_hash::{hash_seeded, range_reduce, HashAlg, HashFamily, SeededFamily};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Purity: same (alg, seed, data) triple always hashes identically.
    #[test]
    fn hashing_is_pure(data in vec(any::<u8>(), 0..64), seed in any::<u64>()) {
        for alg in HashAlg::ALL {
            prop_assert_eq!(hash_seeded(alg, seed, &data), hash_seeded(alg, seed, &data));
        }
    }

    /// Extending the input changes the hash (no prefix absorption) for
    /// every algorithm.
    #[test]
    fn extension_changes_hash(data in vec(any::<u8>(), 0..48), extra in any::<u8>()) {
        let mut extended = data.clone();
        extended.push(extra);
        for alg in HashAlg::ALL {
            prop_assert_ne!(
                hash_seeded(alg, 7, &data),
                hash_seeded(alg, 7, &extended),
                "{:?} absorbed an appended byte", alg
            );
        }
    }

    /// range_reduce is always in range and order-preserving in h.
    #[test]
    fn range_reduce_bounds(h in any::<u64>(), h2 in any::<u64>(), n in 1usize..1_000_000) {
        let r = range_reduce(h, n);
        prop_assert!(r < n);
        let (lo, hi) = if h <= h2 { (h, h2) } else { (h2, h) };
        prop_assert!(range_reduce(lo, n) <= range_reduce(hi, n));
    }

    /// Family members behave like distinct functions: across random inputs
    /// they cannot be identical.
    #[test]
    fn family_members_are_distinct_functions(seed in any::<u64>(), data in vec(any::<u8>(), 1..32)) {
        let fam = SeededFamily::new(HashAlg::Murmur3, seed, 4);
        // On any single input, requiring all 4 outputs distinct would be a
        // (vanishing) flake; instead require that not all are equal.
        let outs: Vec<u64> = (0..4).map(|i| fam.hash(i, &data)).collect();
        prop_assert!(outs.windows(2).any(|w| w[0] != w[1]));
    }

    /// Reconstructing a family from the same (alg, seed, arity) reproduces
    /// the same functions — the property filter serialization depends on.
    #[test]
    fn families_are_reproducible(
        seed in any::<u64>(),
        arity in 1usize..16,
        data in vec(any::<u8>(), 0..32),
    ) {
        for alg in HashAlg::ALL {
            let a = SeededFamily::new(alg, seed, arity);
            let b = SeededFamily::new(alg, seed, arity);
            for i in 0..arity {
                prop_assert_eq!(a.hash(i, &data), b.hash(i, &data));
            }
        }
    }

    /// Tag serialization of algorithms is a bijection.
    #[test]
    fn alg_tags_roundtrip(_x in 0..1i32) {
        for alg in HashAlg::ALL {
            prop_assert_eq!(HashAlg::from_tag(alg.tag()), Some(alg));
        }
        prop_assert_eq!(HashAlg::from_tag(200), None);
    }
}
