//! # shbf-concurrent — multi-core serving for the ShBF framework
//!
//! The paper's target deployments (IP lookup, packet classification, §1.1)
//! process packets at wire speed, which on commodity hardware means one
//! filter shared by many cores. Two designs are provided:
//!
//! * [`ConcurrentShbfM`] / [`ConcurrentBf`] — **lock-free** insert/query
//!   over an atomic bit array. Bloom-style inserts are monotone ORs, so
//!   concurrent inserts race benignly; queries never lock. No deletion.
//! * [`ShardedCShbfM`] — counting filter partitioned into independently
//!   locked shards (parking_lot RwLock), supporting concurrent deletion at
//!   the cost of one lock acquisition per operation. The shard is chosen by
//!   an independent hash, so per-shard load balances and the FPR analysis
//!   applies within each shard unchanged.
//!
//! Guarantees: an element whose insert happened-before a query is always
//! found (no false negatives under concurrency); false-positive behaviour
//! is identical to the sequential structures at the same parameters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lockfree;
pub mod sharded;

pub use lockfree::{ConcurrentBf, ConcurrentShbfM};
pub use sharded::{BatchScratch, ShardedCShbfM};
