//! Sharded counting filter: concurrent membership **with deletion**.
//!
//! A counting update touches `k` counters read-modify-write, which cannot
//! be made lock-free without per-counter CAS loops that destroy the
//! single-access-per-pair property the paper optimizes for (§3.3). Instead
//! the element space is partitioned by an independent shard hash into `S`
//! sub-filters, each behind its own `parking_lot::RwLock`: operations on
//! different shards proceed in parallel; queries on the same shard share a
//! read lock.
//!
//! Each shard is a complete [`CShbfM`] with `m/S` logical bits, so the
//! per-shard load factor — and therefore the FPR formula of Theorem 1 —
//! is unchanged in expectation.

use parking_lot::RwLock;
use shbf_core::{CShbfM, ShbfError};
use shbf_hash::{murmur3::murmur3_x64_128, range_reduce};

/// Serialization kind tag (core claims 1–8; the sharded wrapper takes 9).
const SHARDED_CSHBF_M_KIND: u16 = 9;

/// A sharded counting ShBF_M.
pub struct ShardedCShbfM {
    shards: Vec<RwLock<CShbfM>>,
    shard_seed: u64,
}

impl std::fmt::Debug for ShardedCShbfM {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCShbfM")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl ShardedCShbfM {
    /// Creates a filter of `m` total logical bits split over `shards`
    /// sub-filters, each with `k` nominal hash positions.
    pub fn new(m: usize, k: usize, shards: usize, seed: u64) -> Result<Self, ShbfError> {
        if shards == 0 {
            return Err(ShbfError::ZeroSize("shards"));
        }
        let per_shard = (m / shards).max(64);
        let shards = (0..shards)
            .map(|s| CShbfM::new(per_shard, k, seed.wrapping_add(s as u64)).map(RwLock::new))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedCShbfM {
            shards,
            shard_seed: seed ^ 0x5348_4152_4421, // "SHARD!"
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_of(&self, item: &[u8]) -> usize {
        let (h, _) = murmur3_x64_128(item, self.shard_seed);
        range_reduce(h, self.shards.len())
    }

    /// Inserts an element (write lock on one shard).
    pub fn insert(&self, item: &[u8]) {
        self.shards[self.shard_of(item)].write().insert(item);
    }

    /// Deletes an element (write lock on one shard). Same semantics as
    /// [`CShbfM::delete`]: provably-absent deletes are rejected unchanged.
    pub fn delete(&self, item: &[u8]) -> Result<(), ShbfError> {
        self.shards[self.shard_of(item)].write().delete(item)
    }

    /// Membership query (read lock on one shard).
    pub fn contains(&self, item: &[u8]) -> bool {
        self.shards[self.shard_of(item)].read().contains(item)
    }

    /// Net items across all shards.
    pub fn items(&self) -> u64 {
        self.shards.iter().map(|s| s.read().items()).sum()
    }

    /// Per-shard geometry `(m, k, w̄)` — identical across shards.
    pub fn shard_params(&self) -> (usize, usize, usize) {
        let s = self.shards[0].read();
        (s.m(), s.k(), s.w_bar())
    }

    /// Batched membership query: keys are grouped by shard so each shard's
    /// read lock is taken **once per batch** instead of once per key. This
    /// is the server's `MQUERY` fast path — under pipelined traffic the
    /// lock traffic drops from `O(keys)` to `O(shards touched)`.
    ///
    /// Answers are returned in input order.
    pub fn contains_batch<T: AsRef<[u8]>>(&self, items: &[T]) -> Vec<bool> {
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, item) in items.iter().enumerate() {
            by_shard[self.shard_of(item.as_ref())].push(i);
        }
        let mut out = vec![false; items.len()];
        for (shard, indexes) in by_shard.iter().enumerate() {
            if indexes.is_empty() {
                continue;
            }
            let guard = self.shards[shard].read();
            for &i in indexes {
                out[i] = guard.contains(items[i].as_ref());
            }
        }
        out
    }

    /// Serializes the filter: shard hash seed plus every shard's
    /// [`CShbfM`] blob, wrapped in the workspace codec envelope.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = shbf_bits::Writer::new(SHARDED_CSHBF_M_KIND);
        w.u64(self.shard_seed).u64(self.shards.len() as u64);
        for shard in &self.shards {
            w.bytes(&shard.read().to_bytes());
        }
        w.finish().to_vec()
    }

    /// Deserializes a filter produced by [`Self::to_bytes`].
    pub fn from_bytes(blob: &[u8]) -> Result<Self, ShbfError> {
        let mut r = shbf_bits::Reader::new(blob, SHARDED_CSHBF_M_KIND)?;
        let shard_seed = r.u64()?;
        let count = r.u64()? as usize;
        if count == 0 {
            return Err(ShbfError::ZeroSize("shards"));
        }
        let mut shards = Vec::with_capacity(count);
        for _ in 0..count {
            shards.push(RwLock::new(CShbfM::from_bytes(&r.bytes()?)?));
        }
        r.expect_end()?;
        Ok(ShardedCShbfM { shards, shard_seed })
    }

    /// Largest relative deviation of any shard's item count from the mean —
    /// a load-balance health metric (should stay within a few percent for
    /// uniform shard hashing).
    pub fn shard_imbalance(&self) -> f64 {
        let counts: Vec<f64> = self
            .shards
            .iter()
            .map(|s| s.read().items() as f64)
            .collect();
        let mean = counts.iter().sum::<f64>() / counts.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        counts
            .iter()
            .map(|c| (c - mean).abs() / mean)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn key(i: u64) -> [u8; 8] {
        i.to_le_bytes()
    }

    #[test]
    fn basic_insert_query_delete() {
        let f = ShardedCShbfM::new(80_000, 8, 8, 7).unwrap();
        for i in 0..3000 {
            f.insert(&key(i));
        }
        for i in 0..3000 {
            assert!(f.contains(&key(i)));
        }
        for i in 0..1500 {
            f.delete(&key(i)).unwrap();
        }
        for i in 1500..3000 {
            assert!(f.contains(&key(i)), "survivor {i} lost");
        }
        assert_eq!(f.items(), 1500);
    }

    #[test]
    fn batch_agrees_with_single_queries() {
        let f = ShardedCShbfM::new(120_000, 8, 8, 5).unwrap();
        for i in 0..4000 {
            f.insert(&key(i));
        }
        let probes: Vec<[u8; 8]> = (0..8000).map(key).collect();
        let batch = f.contains_batch(&probes);
        for (i, probe) in probes.iter().enumerate() {
            assert_eq!(batch[i], f.contains(probe), "probe {i}");
        }
        assert!(batch[..4000].iter().all(|&b| b), "false negative in batch");
    }

    #[test]
    fn serialization_roundtrips() {
        let f = ShardedCShbfM::new(80_000, 8, 4, 21).unwrap();
        for i in 0..2000 {
            f.insert(&key(i));
        }
        let blob = f.to_bytes();
        let g = ShardedCShbfM::from_bytes(&blob).unwrap();
        assert_eq!(g.shards(), 4);
        assert_eq!(g.items(), 2000);
        for i in 0..2000 {
            assert!(g.contains(&key(i)), "restored filter lost {i}");
        }
        // Same shard hash → deletes still route correctly after reload.
        g.delete(&key(0)).unwrap();
        assert_eq!(g.items(), 1999);
        assert_eq!(g.to_bytes().len(), blob.len());
        assert!(ShardedCShbfM::from_bytes(&blob[..blob.len() - 2]).is_err());
    }

    #[test]
    fn shards_stay_balanced() {
        let f = ShardedCShbfM::new(160_000, 8, 16, 3).unwrap();
        for i in 0..32_000 {
            f.insert(&key(i));
        }
        let imbalance = f.shard_imbalance();
        assert!(imbalance < 0.15, "imbalance {imbalance:.3}");
    }

    #[test]
    fn concurrent_mixed_workload() {
        let f = Arc::new(ShardedCShbfM::new(400_000, 8, 16, 11).unwrap());
        // Phase 1: concurrent inserts of disjoint ranges.
        crossbeam::scope(|scope| {
            for t in 0..4u64 {
                let f = Arc::clone(&f);
                scope.spawn(move |_| {
                    for i in (t * 8000)..((t + 1) * 8000) {
                        f.insert(&key(i));
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(f.items(), 32_000);

        // Phase 2: two threads delete their ranges while two others verify
        // untouched ranges continuously.
        crossbeam::scope(|scope| {
            for t in 0..2u64 {
                let f = Arc::clone(&f);
                scope.spawn(move |_| {
                    for i in (t * 8000)..((t + 1) * 8000) {
                        f.delete(&key(i)).unwrap();
                    }
                });
            }
            for t in 2..4u64 {
                let f = Arc::clone(&f);
                scope.spawn(move |_| {
                    for i in (t * 8000)..((t + 1) * 8000) {
                        assert!(f.contains(&key(i)), "untouched key {i} lost mid-churn");
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(f.items(), 16_000);
        for i in 16_000..32_000 {
            assert!(f.contains(&key(i)));
        }
    }
}
