//! Sharded counting filter: concurrent membership **with deletion**.
//!
//! A counting update touches `k` counters read-modify-write, which cannot
//! be made lock-free without per-counter CAS loops that destroy the
//! single-access-per-pair property the paper optimizes for (§3.3). Instead
//! the element space is partitioned by an independent shard hash into `S`
//! sub-filters, each behind its own `parking_lot::RwLock`: operations on
//! different shards proceed in parallel; queries on the same shard share a
//! read lock.
//!
//! Each shard is a complete [`CShbfM`] with `m/S` logical bits, so the
//! per-shard load factor — and therefore the FPR formula of Theorem 1 —
//! is unchanged in expectation.

use parking_lot::RwLock;
use shbf_core::{CShbfM, ShbfError};
use shbf_hash::{murmur3::murmur3_x64_128, range_reduce, FamilyKind};

/// Serialization kind tag (core claims 1–8; the sharded wrapper takes 9).
const SHARDED_CSHBF_M_KIND: u16 = 9;

/// Reusable scratch for [`ShardedCShbfM::contains_batch_with`]: the
/// shard-grouping index lists and the per-shard verdict buffer. One scratch
/// per connection/worker turns steady-state batch queries into a
/// zero-allocation path (the buffers grow to the high-water mark and stay).
#[derive(Debug, Default)]
pub struct BatchScratch {
    /// Indexes of the batch's keys, grouped by shard.
    by_shard: Vec<Vec<usize>>,
    /// Verdicts for one shard's keys (scattered back into the output).
    verdicts: Vec<bool>,
}

/// A sharded counting ShBF_M.
pub struct ShardedCShbfM {
    shards: Vec<RwLock<CShbfM>>,
    shard_seed: u64,
}

impl std::fmt::Debug for ShardedCShbfM {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCShbfM")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl ShardedCShbfM {
    /// Creates a filter of `m` total logical bits split over `shards`
    /// sub-filters, each with `k` nominal hash positions.
    pub fn new(m: usize, k: usize, shards: usize, seed: u64) -> Result<Self, ShbfError> {
        Self::with_family(
            m,
            k,
            shards,
            FamilyKind::Seeded(shbf_hash::HashAlg::Murmur3),
            seed,
        )
    }

    /// [`Self::new`] generalized over the per-shard hash-family construction
    /// (pass [`FamilyKind::OneShot`] for digest-once hashing). Shard
    /// geometry matches [`CShbfM::new`]'s defaults: 4-bit counters and the
    /// single-access-update bound `w̄ = ⌊(w − 7)/4⌋`.
    pub fn with_family(
        m: usize,
        k: usize,
        shards: usize,
        family: FamilyKind,
        seed: u64,
    ) -> Result<Self, ShbfError> {
        if shards == 0 {
            return Err(ShbfError::ZeroSize("shards"));
        }
        let w_bar = CShbfM::default_w_bar();
        let z = CShbfM::DEFAULT_COUNTER_BITS;
        let per_shard = (m / shards).max(64);
        let shards = (0..shards)
            .map(|s| {
                CShbfM::with_family(per_shard, k, w_bar, z, family, seed.wrapping_add(s as u64))
                    .map(RwLock::new)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedCShbfM {
            shards,
            shard_seed: seed ^ 0x5348_4152_4421, // "SHARD!"
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_of(&self, item: &[u8]) -> usize {
        let (h, _) = murmur3_x64_128(item, self.shard_seed);
        range_reduce(h, self.shards.len())
    }

    /// Inserts an element (write lock on one shard).
    pub fn insert(&self, item: &[u8]) {
        self.shards[self.shard_of(item)].write().insert(item);
    }

    /// Deletes an element (write lock on one shard). Same semantics as
    /// [`CShbfM::delete`]: provably-absent deletes are rejected unchanged.
    pub fn delete(&self, item: &[u8]) -> Result<(), ShbfError> {
        self.shards[self.shard_of(item)].write().delete(item)
    }

    /// Membership query (read lock on one shard).
    pub fn contains(&self, item: &[u8]) -> bool {
        self.shards[self.shard_of(item)].read().contains(item)
    }

    /// Net items across all shards.
    pub fn items(&self) -> u64 {
        self.shards.iter().map(|s| s.read().items()).sum()
    }

    /// Per-shard geometry `(m, k, w̄)` — identical across shards.
    pub fn shard_params(&self) -> (usize, usize, usize) {
        let s = self.shards[0].read();
        (s.m(), s.k(), s.w_bar())
    }

    /// Set bits summed over all shards' on-chip mirrors.
    pub fn count_ones(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.read().count_ones() as u64)
            .sum()
    }

    /// Physical mirror bits summed over all shards.
    pub fn physical_bits(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.read().physical_bits() as u64)
            .sum()
    }

    /// Batched membership query: keys are grouped by shard so each shard's
    /// read lock is taken **once per batch** instead of once per key, and
    /// each shard's group runs through [`CShbfM::contains_batch_into`]'s
    /// prefetched two-stage pipeline. Under pipelined traffic the lock
    /// traffic drops from `O(keys)` to `O(shards touched)` and probe cache
    /// misses overlap instead of serializing.
    ///
    /// Answers are returned in input order.
    pub fn contains_batch<T: AsRef<[u8]>>(&self, items: &[T]) -> Vec<bool> {
        let mut out = Vec::new();
        let mut scratch = BatchScratch::default();
        self.contains_batch_with(items, &mut out, &mut scratch);
        out
    }

    /// [`Self::contains_batch`] with caller-owned output and scratch
    /// buffers, so a connection handler serving a stream of `MQUERY`
    /// batches allocates nothing in steady state.
    pub fn contains_batch_with<T: AsRef<[u8]>>(
        &self,
        items: &[T],
        out: &mut Vec<bool>,
        scratch: &mut BatchScratch,
    ) {
        out.clear();
        out.resize(items.len(), false);
        // Taken out of the scratch so the grouping helper (which borrows
        // `by_shard`) and the per-shard pipeline can't alias.
        let mut verdicts = std::mem::take(&mut scratch.verdicts);
        self.for_each_shard_group(
            items,
            &mut scratch.by_shard,
            |shards, shard, indexes, keys| {
                shards[shard]
                    .read()
                    .contains_batch_into(keys, &mut verdicts);
                for (&i, &verdict) in indexes.iter().zip(verdicts.iter()) {
                    out[i] = verdict;
                }
            },
        );
        scratch.verdicts = verdicts;
    }

    /// The shared shard-grouping scaffolding of the batch paths: fills
    /// `by_shard` with each key's index (buffers reused), then runs
    /// `per_shard` once for every nonempty group with the group's key
    /// slice rebuilt in a reused buffer. Query and insert batching both
    /// route through here so shard selection can never diverge between
    /// them.
    fn for_each_shard_group<'a, T: AsRef<[u8]>>(
        &self,
        items: &'a [T],
        by_shard: &mut Vec<Vec<usize>>,
        mut per_shard: impl FnMut(&[RwLock<CShbfM>], usize, &[usize], &[&'a [u8]]),
    ) {
        by_shard.resize(self.shards.len(), Vec::new());
        for group in by_shard.iter_mut() {
            group.clear();
        }
        for (i, item) in items.iter().enumerate() {
            by_shard[self.shard_of(item.as_ref())].push(i);
        }
        // Per-shard key list, reused across shards (borrows `items`, so it
        // cannot live in the scratch struct).
        let mut shard_keys: Vec<&[u8]> = Vec::new();
        for (shard, indexes) in by_shard.iter().enumerate() {
            if indexes.is_empty() {
                continue;
            }
            shard_keys.clear();
            shard_keys.extend(indexes.iter().map(|&i| items[i].as_ref()));
            per_shard(&self.shards, shard, indexes, &shard_keys);
        }
    }

    /// Batched insert: keys are grouped by shard so each shard's **write**
    /// lock is taken once per batch instead of once per key, and each
    /// group runs through [`CShbfM::insert_batch`]'s two-stage prefetched
    /// pipeline (hash + prefetch the counter/mirror words for a chunk,
    /// then apply the updates). This is the server's bulk-load path.
    pub fn insert_batch<T: AsRef<[u8]>>(&self, items: &[T]) {
        self.insert_batch_with(items, &mut BatchScratch::default());
    }

    /// [`Self::insert_batch`] with caller-owned shard-grouping scratch, so
    /// a connection handler serving a stream of bulk loads allocates
    /// nothing in steady state (the `verdicts` half of the scratch is
    /// untouched).
    pub fn insert_batch_with<T: AsRef<[u8]>>(&self, items: &[T], scratch: &mut BatchScratch) {
        self.for_each_shard_group(items, &mut scratch.by_shard, |shards, shard, _, keys| {
            shards[shard].write().insert_batch(keys);
        });
    }

    /// Serializes the filter: shard hash seed plus every shard's
    /// [`CShbfM`] blob, wrapped in the workspace codec envelope.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = shbf_bits::Writer::new(SHARDED_CSHBF_M_KIND);
        w.u64(self.shard_seed).u64(self.shards.len() as u64);
        for shard in &self.shards {
            w.bytes(&shard.read().to_bytes());
        }
        w.finish().to_vec()
    }

    /// Deserializes a filter produced by [`Self::to_bytes`].
    pub fn from_bytes(blob: &[u8]) -> Result<Self, ShbfError> {
        let mut r = shbf_bits::Reader::new(blob, SHARDED_CSHBF_M_KIND)?;
        let shard_seed = r.u64()?;
        let count = r.u64()? as usize;
        if count == 0 {
            return Err(ShbfError::ZeroSize("shards"));
        }
        let mut shards = Vec::with_capacity(count);
        for _ in 0..count {
            shards.push(RwLock::new(CShbfM::from_bytes(&r.bytes()?)?));
        }
        r.expect_end()?;
        Ok(ShardedCShbfM { shards, shard_seed })
    }

    /// Largest relative deviation of any shard's item count from the mean —
    /// a load-balance health metric (should stay within a few percent for
    /// uniform shard hashing).
    pub fn shard_imbalance(&self) -> f64 {
        let counts: Vec<f64> = self
            .shards
            .iter()
            .map(|s| s.read().items() as f64)
            .collect();
        let mean = counts.iter().sum::<f64>() / counts.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        counts
            .iter()
            .map(|c| (c - mean).abs() / mean)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn key(i: u64) -> [u8; 8] {
        i.to_le_bytes()
    }

    #[test]
    fn basic_insert_query_delete() {
        let f = ShardedCShbfM::new(80_000, 8, 8, 7).unwrap();
        for i in 0..3000 {
            f.insert(&key(i));
        }
        for i in 0..3000 {
            assert!(f.contains(&key(i)));
        }
        for i in 0..1500 {
            f.delete(&key(i)).unwrap();
        }
        for i in 1500..3000 {
            assert!(f.contains(&key(i)), "survivor {i} lost");
        }
        assert_eq!(f.items(), 1500);
    }

    #[test]
    fn batch_agrees_with_single_queries() {
        let f = ShardedCShbfM::new(120_000, 8, 8, 5).unwrap();
        for i in 0..4000 {
            f.insert(&key(i));
        }
        let probes: Vec<[u8; 8]> = (0..8000).map(key).collect();
        let batch = f.contains_batch(&probes);
        for (i, probe) in probes.iter().enumerate() {
            assert_eq!(batch[i], f.contains(probe), "probe {i}");
        }
        assert!(batch[..4000].iter().all(|&b| b), "false negative in batch");
    }

    #[test]
    fn batch_scratch_reuse_is_consistent() {
        let f = ShardedCShbfM::new(120_000, 8, 8, 5).unwrap();
        for i in 0..4000 {
            f.insert(&key(i));
        }
        let mut out = Vec::new();
        let mut scratch = BatchScratch::default();
        // Several batches through the same scratch, including an empty one.
        for range in [0..2000u64, 1000..5000, 0..0, 3999..4001] {
            let probes: Vec<[u8; 8]> = range.map(key).collect();
            f.contains_batch_with(&probes, &mut out, &mut scratch);
            assert_eq!(out.len(), probes.len());
            for (i, probe) in probes.iter().enumerate() {
                assert_eq!(out[i], f.contains(probe), "probe {i}");
            }
        }
    }

    #[test]
    fn insert_batch_agrees_with_scalar_inserts() {
        let a = ShardedCShbfM::new(120_000, 8, 8, 5).unwrap();
        let b = ShardedCShbfM::new(120_000, 8, 8, 5).unwrap();
        let keys: Vec<[u8; 8]> = (0..4000).map(key).collect();
        for k in &keys {
            a.insert(k);
        }
        let mut scratch = BatchScratch::default();
        // Two batches through one scratch, including an empty one.
        b.insert_batch_with(&keys[..1000], &mut scratch);
        b.insert_batch_with(&[] as &[[u8; 8]], &mut scratch);
        b.insert_batch_with(&keys[1000..], &mut scratch);
        assert_eq!(a.items(), b.items());
        // Same shard routing + same per-shard pipeline → identical blobs.
        assert_eq!(a.to_bytes(), b.to_bytes());
        // Deletes still balance: batch-inserted keys delete cleanly.
        for k in &keys {
            b.delete(k).unwrap();
        }
        assert_eq!(b.items(), 0);
    }

    #[test]
    fn one_shot_family_shards_roundtrip() {
        let f = ShardedCShbfM::with_family(80_000, 8, 4, FamilyKind::OneShot, 21).unwrap();
        for i in 0..2000 {
            f.insert(&key(i));
        }
        for i in 0..2000 {
            assert!(f.contains(&key(i)), "one-shot sharded lost {i}");
        }
        let g = ShardedCShbfM::from_bytes(&f.to_bytes()).unwrap();
        for i in 0..4000 {
            assert_eq!(f.contains(&key(i)), g.contains(&key(i)), "key {i}");
        }
        g.delete(&key(0)).unwrap();
        assert_eq!(g.items(), 1999);
    }

    #[test]
    fn serialization_roundtrips() {
        let f = ShardedCShbfM::new(80_000, 8, 4, 21).unwrap();
        for i in 0..2000 {
            f.insert(&key(i));
        }
        let blob = f.to_bytes();
        let g = ShardedCShbfM::from_bytes(&blob).unwrap();
        assert_eq!(g.shards(), 4);
        assert_eq!(g.items(), 2000);
        for i in 0..2000 {
            assert!(g.contains(&key(i)), "restored filter lost {i}");
        }
        // Same shard hash → deletes still route correctly after reload.
        g.delete(&key(0)).unwrap();
        assert_eq!(g.items(), 1999);
        assert_eq!(g.to_bytes().len(), blob.len());
        assert!(ShardedCShbfM::from_bytes(&blob[..blob.len() - 2]).is_err());
    }

    #[test]
    fn shards_stay_balanced() {
        let f = ShardedCShbfM::new(160_000, 8, 16, 3).unwrap();
        for i in 0..32_000 {
            f.insert(&key(i));
        }
        let imbalance = f.shard_imbalance();
        assert!(imbalance < 0.15, "imbalance {imbalance:.3}");
    }

    #[test]
    fn concurrent_mixed_workload() {
        let f = Arc::new(ShardedCShbfM::new(400_000, 8, 16, 11).unwrap());
        // Phase 1: concurrent inserts of disjoint ranges.
        crossbeam::scope(|scope| {
            for t in 0..4u64 {
                let f = Arc::clone(&f);
                scope.spawn(move |_| {
                    for i in (t * 8000)..((t + 1) * 8000) {
                        f.insert(&key(i));
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(f.items(), 32_000);

        // Phase 2: two threads delete their ranges while two others verify
        // untouched ranges continuously.
        crossbeam::scope(|scope| {
            for t in 0..2u64 {
                let f = Arc::clone(&f);
                scope.spawn(move |_| {
                    for i in (t * 8000)..((t + 1) * 8000) {
                        f.delete(&key(i)).unwrap();
                    }
                });
            }
            for t in 2..4u64 {
                let f = Arc::clone(&f);
                scope.spawn(move |_| {
                    for i in (t * 8000)..((t + 1) * 8000) {
                        assert!(f.contains(&key(i)), "untouched key {i} lost mid-churn");
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(f.items(), 16_000);
        for i in 16_000..32_000 {
            assert!(f.contains(&key(i)));
        }
    }
}
