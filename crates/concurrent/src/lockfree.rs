//! Lock-free membership filters over [`AtomicBitArray`].

use shbf_bits::access::MemoryModel;
use shbf_bits::AtomicBitArray;
use shbf_core::{ShbfError, ShbfM};
use shbf_hash::{HashAlg, HashFamily, SeededFamily};

/// Lock-free ShBF_M: `insert(&self)` and `contains(&self)` may be called
/// from any number of threads simultaneously.
#[derive(Debug)]
pub struct ConcurrentShbfM {
    bits: AtomicBitArray,
    m: usize,
    k: usize,
    w_bar: usize,
    family: SeededFamily,
}

impl ConcurrentShbfM {
    /// Creates a filter with the paper's defaults (`w̄ = 57`, Murmur3).
    pub fn new(m: usize, k: usize, seed: u64) -> Result<Self, ShbfError> {
        Self::with_config(
            m,
            k,
            MemoryModel::default().max_window(),
            HashAlg::Murmur3,
            seed,
        )
    }

    /// Fully parameterized constructor (same validation as [`ShbfM`]).
    pub fn with_config(
        m: usize,
        k: usize,
        w_bar: usize,
        alg: HashAlg,
        seed: u64,
    ) -> Result<Self, ShbfError> {
        // Delegate validation to the sequential constructor.
        let template = ShbfM::with_config(m, k, w_bar, alg, seed)?;
        let _ = template;
        Ok(ConcurrentShbfM {
            bits: AtomicBitArray::new(m + w_bar - 1),
            m,
            k,
            w_bar,
            family: SeededFamily::new(alg, seed, k / 2 + 1),
        })
    }

    /// Logical size `m`.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Nominal `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    #[inline]
    fn pairs(&self) -> usize {
        self.k / 2
    }

    #[inline]
    fn offset(&self, item: &[u8]) -> usize {
        shbf_hash::range_reduce(self.family.hash(self.pairs(), item), self.w_bar - 1) + 1
    }

    /// Inserts an element (lock-free; safe to race with other inserts and
    /// queries).
    pub fn insert(&self, item: &[u8]) {
        let o = self.offset(item);
        for i in 0..self.pairs() {
            let pos = shbf_hash::range_reduce(self.family.hash(i, item), self.m);
            self.bits.set(pos);
            self.bits.set(pos + o);
        }
    }

    /// Membership query (lock-free, short-circuiting).
    pub fn contains(&self, item: &[u8]) -> bool {
        let o = self.offset(item);
        for i in 0..self.pairs() {
            let pos = shbf_hash::range_reduce(self.family.hash(i, item), self.m);
            let (b0, b1) = self.bits.probe_pair(pos, o);
            if !(b0 && b1) {
                return false;
            }
        }
        true
    }

    /// Fraction of set bits (snapshot).
    pub fn fill_ratio(&self) -> f64 {
        self.bits.count_ones() as f64 / self.bits.len() as f64
    }
}

/// Lock-free standard Bloom filter (baseline for scaling comparisons).
#[derive(Debug)]
pub struct ConcurrentBf {
    bits: AtomicBitArray,
    m: usize,
    k: usize,
    family: SeededFamily,
}

impl ConcurrentBf {
    /// Creates a filter of `m` bits with `k` hashes.
    pub fn new(m: usize, k: usize, seed: u64) -> Result<Self, ShbfError> {
        if m == 0 {
            return Err(ShbfError::ZeroSize("m"));
        }
        if k == 0 {
            return Err(ShbfError::KZero);
        }
        Ok(ConcurrentBf {
            bits: AtomicBitArray::new(m),
            m,
            k,
            family: SeededFamily::new(HashAlg::Murmur3, seed, k),
        })
    }

    /// Inserts an element (lock-free).
    pub fn insert(&self, item: &[u8]) {
        for i in 0..self.k {
            self.bits
                .set(shbf_hash::range_reduce(self.family.hash(i, item), self.m));
        }
    }

    /// Membership query (lock-free, short-circuiting).
    pub fn contains(&self, item: &[u8]) -> bool {
        (0..self.k).all(|i| {
            self.bits
                .get(shbf_hash::range_reduce(self.family.hash(i, item), self.m))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn keys(range: std::ops::Range<u64>) -> Vec<[u8; 8]> {
        range.map(|i| i.to_le_bytes()).collect()
    }

    #[test]
    fn sequential_behaviour_matches_shbf_m() {
        // Same seed/params ⇒ identical bit addressing ⇒ identical answers.
        let concurrent = ConcurrentShbfM::new(20_000, 8, 99).unwrap();
        let mut sequential = ShbfM::new(20_000, 8, 99).unwrap();
        for key in keys(0..1500) {
            concurrent.insert(&key);
            sequential.insert(&key);
        }
        for key in keys(0..50_000) {
            assert_eq!(concurrent.contains(&key), sequential.contains(&key));
        }
    }

    #[test]
    fn concurrent_inserts_have_no_false_negatives() {
        let filter = Arc::new(ConcurrentShbfM::new(200_000, 8, 5).unwrap());
        let threads = 4u64;
        let per_thread = 5_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = Arc::clone(&filter);
                std::thread::spawn(move || {
                    for i in (t * per_thread)..((t + 1) * per_thread) {
                        f.insert(&i.to_le_bytes());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..(threads * per_thread) {
            assert!(filter.contains(&i.to_le_bytes()), "lost insert {i}");
        }
    }

    #[test]
    fn readers_race_with_writers_safely() {
        let filter = Arc::new(ConcurrentShbfM::new(100_000, 8, 5).unwrap());
        let writer = {
            let f = Arc::clone(&filter);
            std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    f.insert(&i.to_le_bytes());
                }
            })
        };
        // Readers must never see a false negative for already-inserted keys.
        let reader = {
            let f = Arc::clone(&filter);
            std::thread::spawn(move || {
                let mut confirmed = 0u64;
                for round in 0..10u64 {
                    for i in 0..(round * 1000) {
                        if f.contains(&i.to_le_bytes()) {
                            confirmed += 1;
                        }
                    }
                }
                confirmed
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        for i in 0..20_000u64 {
            assert!(filter.contains(&i.to_le_bytes()));
        }
    }

    #[test]
    fn concurrent_bf_matches_lock_free_semantics() {
        let filter = Arc::new(ConcurrentBf::new(100_000, 6, 3).unwrap());
        crossbeam::scope(|scope| {
            for t in 0..4u64 {
                let f = Arc::clone(&filter);
                scope.spawn(move |_| {
                    for i in 0..3000u64 {
                        f.insert(&(t * 1_000_000 + i).to_le_bytes());
                    }
                });
            }
        })
        .unwrap();
        for t in 0..4u64 {
            for i in 0..3000u64 {
                assert!(filter.contains(&(t * 1_000_000 + i).to_le_bytes()));
            }
        }
    }
}
