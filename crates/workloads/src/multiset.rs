//! Multiplicity workloads: multi-sets of flows with configurable count
//! distributions, capped at the paper's maximum multiplicity `c`
//! (Fig. 11 uses `c = 57`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::flow::FlowId;
use crate::zipf::Zipf;

/// How multiplicities are assigned to distinct elements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CountDistribution {
    /// Every element has the same count.
    Fixed(u64),
    /// Counts uniform in `1..=c`.
    Uniform,
    /// Counts Zipf-distributed over `1..=c` with the given skew
    /// (heavy-tailed, like real flow sizes).
    Zipf(f64),
}

/// A generated multi-set workload.
#[derive(Debug, Clone)]
pub struct MultisetWorkload {
    /// Distinct elements with their multiplicities (`1..=c`).
    pub counts: Vec<(FlowId, u64)>,
    /// The cap `c`.
    pub c: u64,
}

impl MultisetWorkload {
    /// Generates `n_distinct` elements with counts from `dist`, capped at `c`.
    pub fn generate(n_distinct: usize, c: u64, dist: CountDistribution, seed: u64) -> Self {
        assert!(c >= 1);
        let flows = crate::sets::distinct_flows(n_distinct, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6D75_6C74); // "mult"
        let zipf = match dist {
            CountDistribution::Zipf(theta) => Some(Zipf::new(c as usize, theta)),
            _ => None,
        };
        let counts = flows
            .into_iter()
            .map(|f| {
                let count = match dist {
                    CountDistribution::Fixed(v) => v.clamp(1, c),
                    CountDistribution::Uniform => rng.random_range(1..=c),
                    CountDistribution::Zipf(_) => zipf.as_ref().unwrap().sample(&mut rng) as u64,
                };
                (f, count)
            })
            .collect();
        MultisetWorkload { counts, c }
    }

    /// The counts as `(bytes, count)` pairs ready for `ShbfX::build`.
    pub fn byte_counts(&self) -> Vec<([u8; 13], u64)> {
        self.counts
            .iter()
            .map(|(f, c)| (f.to_bytes(), *c))
            .collect()
    }

    /// Total packet count (sum of multiplicities).
    pub fn total_packets(&self) -> u64 {
        self.counts.iter().map(|(_, c)| c).sum()
    }

    /// Expands to a packet stream: each element repeated `count` times, in a
    /// deterministic interleaved order (not sorted by flow — mimics how
    /// packets of different flows interleave on a link).
    pub fn packet_stream(&self, seed: u64) -> Vec<FlowId> {
        let mut packets: Vec<FlowId> = Vec::with_capacity(self.total_packets() as usize);
        for (f, c) in &self.counts {
            for _ in 0..*c {
                packets.push(*f);
            }
        }
        // Fisher–Yates with a seeded RNG.
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..packets.len()).rev() {
            let j = rng.random_range(0..=i);
            packets.swap(i, j);
        }
        packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_respect_cap() {
        for dist in [
            CountDistribution::Fixed(100),
            CountDistribution::Uniform,
            CountDistribution::Zipf(0.9),
        ] {
            let w = MultisetWorkload::generate(2000, 57, dist, 5);
            assert_eq!(w.counts.len(), 2000);
            assert!(
                w.counts.iter().all(|(_, c)| (1..=57).contains(c)),
                "{dist:?}"
            );
        }
    }

    #[test]
    fn zipf_counts_skew_to_one() {
        let w = MultisetWorkload::generate(20_000, 57, CountDistribution::Zipf(1.2), 7);
        let ones = w.counts.iter().filter(|(_, c)| *c == 1).count();
        // pmf(1) = 1/H_{57,1.2} ≈ 0.31; uniform would give 1/57 ≈ 0.018.
        assert!(
            ones as f64 / 20_000.0 > 0.25,
            "expected heavy mass at count 1, got {ones}"
        );
    }

    #[test]
    fn uniform_counts_cover_range() {
        let w = MultisetWorkload::generate(20_000, 10, CountDistribution::Uniform, 3);
        for target in 1..=10u64 {
            assert!(
                w.counts.iter().any(|(_, c)| *c == target),
                "count {target} never generated"
            );
        }
    }

    #[test]
    fn packet_stream_has_exact_multiplicities() {
        let w = MultisetWorkload::generate(200, 8, CountDistribution::Uniform, 11);
        let stream = w.packet_stream(13);
        assert_eq!(stream.len() as u64, w.total_packets());
        let mut histogram: std::collections::HashMap<FlowId, u64> = Default::default();
        for p in &stream {
            *histogram.entry(*p).or_insert(0) += 1;
        }
        for (f, c) in &w.counts {
            assert_eq!(histogram.get(f), Some(c));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = MultisetWorkload::generate(500, 20, CountDistribution::Zipf(0.8), 9);
        let b = MultisetWorkload::generate(500, 20, CountDistribution::Zipf(0.8), 9);
        assert_eq!(a.counts, b.counts);
    }
}
