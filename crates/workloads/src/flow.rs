//! 13-byte 5-tuple flow identifiers — the paper's element type (§6.1:
//! "we stored each 5-tuple flow ID as a 13-byte string, which is used as an
//! element of a set during evaluation").

use rand::Rng;

/// A network flow identifier: source/destination IPv4 + ports + protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP, …).
    pub proto: u8,
}

impl FlowId {
    /// Size of the canonical encoding in bytes.
    pub const WIRE_SIZE: usize = 13;

    /// Canonical 13-byte encoding (big-endian fields, the usual tuple order).
    pub fn to_bytes(self) -> [u8; 13] {
        let mut b = [0u8; 13];
        b[0..4].copy_from_slice(&self.src_ip.to_be_bytes());
        b[4..8].copy_from_slice(&self.dst_ip.to_be_bytes());
        b[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        b[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        b[12] = self.proto;
        b
    }

    /// Decodes the canonical encoding.
    pub fn from_bytes(b: &[u8; 13]) -> Self {
        FlowId {
            src_ip: u32::from_be_bytes(b[0..4].try_into().unwrap()),
            dst_ip: u32::from_be_bytes(b[4..8].try_into().unwrap()),
            src_port: u16::from_be_bytes(b[8..10].try_into().unwrap()),
            dst_port: u16::from_be_bytes(b[10..12].try_into().unwrap()),
            proto: b[12],
        }
    }

    /// Samples a random flow with realistic structure: private/public source
    /// ranges, well-known or ephemeral ports, TCP/UDP-dominated protocol mix.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let proto = match rng.random_range(0..10u8) {
            0..=6 => 6,  // TCP dominates backbone traffic
            7..=8 => 17, // UDP
            _ => 1,      // ICMP tail
        };
        const PORTS: [u16; 7] = [80, 443, 53, 22, 25, 123, 8080];
        let dst_port = if rng.random_bool(0.5) {
            PORTS[rng.random_range(0..PORTS.len())]
        } else {
            rng.random_range(1024..=u16::MAX)
        };
        FlowId {
            src_ip: rng.random(),
            dst_ip: rng.random(),
            src_port: rng.random_range(1024..=u16::MAX),
            dst_port,
            proto,
        }
    }
}

impl std::fmt::Display for FlowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.src_ip.to_be_bytes();
        let d = self.dst_ip.to_be_bytes();
        write!(
            f,
            "{}.{}.{}.{}:{} -> {}.{}.{}.{}:{} proto {}",
            s[0],
            s[1],
            s[2],
            s[3],
            self.src_port,
            d[0],
            d[1],
            d[2],
            d[3],
            self.dst_port,
            self.proto
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn wire_roundtrip() {
        let f = FlowId {
            src_ip: 0x0A00_0001,
            dst_ip: 0xC0A8_0101,
            src_port: 54321,
            dst_port: 443,
            proto: 6,
        };
        assert_eq!(FlowId::from_bytes(&f.to_bytes()), f);
        assert_eq!(f.to_bytes().len(), FlowId::WIRE_SIZE);
    }

    #[test]
    fn random_flows_are_mostly_distinct() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            seen.insert(FlowId::random(&mut rng));
        }
        assert!(seen.len() > 9_990);
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(FlowId::random(&mut a), FlowId::random(&mut b));
        }
    }

    #[test]
    fn display_is_readable() {
        let f = FlowId {
            src_ip: u32::from_be_bytes([10, 0, 0, 1]),
            dst_ip: u32::from_be_bytes([8, 8, 8, 8]),
            src_port: 1234,
            dst_port: 53,
            proto: 17,
        };
        assert_eq!(f.to_string(), "10.0.0.1:1234 -> 8.8.8.8:53 proto 17");
    }
}
