//! Synthetic backbone-router traces and a binary trace-file format.
//!
//! The paper captured 10 M packets / 8 M distinct flows from a 10 Gbps link
//! (§6.1). [`SyntheticTrace::generate`] produces the same *shape*:
//! a configurable number of distinct flows, heavy-tailed packet counts, and
//! a deterministic packet interleaving. [`SyntheticTrace::write_file`] /
//! [`SyntheticTrace::read_file`] store traces as CRC-checked binary files so
//! experiments can share identical inputs across runs.

use std::io::{Read as _, Write as _};
use std::path::Path;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::flow::FlowId;
use crate::zipf::Zipf;

/// Configuration for synthetic trace generation.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Number of distinct flows (the paper: 8 M).
    pub distinct_flows: usize,
    /// Total packets to emit (the paper: 10 M). Must be ≥ `distinct_flows`.
    pub total_packets: usize,
    /// Zipf skew of the flow-size distribution.
    pub zipf_theta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        // 1/10th of the paper's scale: 800 k distinct flows, 1 M packets.
        TraceConfig {
            distinct_flows: 800_000,
            total_packets: 1_000_000,
            zipf_theta: 0.9,
            seed: 0x7472_6163, // "trac"
        }
    }
}

/// A generated (or loaded) packet trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticTrace {
    /// The packet stream (flow IDs in arrival order).
    pub packets: Vec<FlowId>,
    /// The distinct flows, in first-appearance order.
    pub flows: Vec<FlowId>,
}

impl SyntheticTrace {
    /// Generates a trace: every distinct flow appears at least once; the
    /// remaining packet budget is distributed by Zipf rank.
    pub fn generate(cfg: &TraceConfig) -> Self {
        assert!(cfg.distinct_flows >= 1);
        assert!(
            cfg.total_packets >= cfg.distinct_flows,
            "need at least one packet per distinct flow"
        );
        let flows = crate::sets::distinct_flows(cfg.distinct_flows, cfg.seed);
        let mut packets = Vec::with_capacity(cfg.total_packets);
        packets.extend_from_slice(&flows);

        let extra = cfg.total_packets - cfg.distinct_flows;
        if extra > 0 {
            let zipf = Zipf::new(cfg.distinct_flows, cfg.zipf_theta);
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7061_636B); // "pack"
            for _ in 0..extra {
                let rank = zipf.sample(&mut rng);
                packets.push(flows[rank - 1]);
            }
        }
        // Interleave deterministically.
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7368_7566); // "shuf"
        for i in (1..packets.len()).rev() {
            let j = rng.random_range(0..=i);
            packets.swap(i, j);
        }
        SyntheticTrace { packets, flows }
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True if the trace has no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Per-flow packet counts (the multiplicity ground truth).
    pub fn flow_counts(&self) -> Vec<(FlowId, u64)> {
        let mut histogram: std::collections::HashMap<FlowId, u64> =
            std::collections::HashMap::with_capacity(self.flows.len());
        for p in &self.packets {
            *histogram.entry(*p).or_insert(0) += 1;
        }
        // Stable order: first-appearance order of flows.
        self.flows.iter().map(|f| (*f, histogram[f])).collect()
    }

    /// Writes the trace to a CRC-checked binary file.
    pub fn write_file(&self, path: &Path) -> std::io::Result<()> {
        let mut w = shbf_bits::Writer::new(0xF10); // trace-file kind tag
        w.u64(self.packets.len() as u64);
        w.u64(self.flows.len() as u64);
        let mut payload = Vec::with_capacity(13 * (self.packets.len() + self.flows.len()));
        for p in &self.packets {
            payload.extend_from_slice(&p.to_bytes());
        }
        for f in &self.flows {
            payload.extend_from_slice(&f.to_bytes());
        }
        w.bytes(&payload);
        let blob = w.finish();
        let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
        file.write_all(&blob)?;
        file.flush()
    }

    /// Reads a trace written by [`Self::write_file`].
    pub fn read_file(path: &Path) -> std::io::Result<Self> {
        let mut blob = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut blob)?;
        let mut r = shbf_bits::Reader::new(&blob, 0xF10)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let invalid =
            |e: shbf_bits::CodecError| std::io::Error::new(std::io::ErrorKind::InvalidData, e);
        let n_packets = r.u64().map_err(invalid)? as usize;
        let n_flows = r.u64().map_err(invalid)? as usize;
        let payload = r.bytes().map_err(invalid)?;
        r.expect_end().map_err(invalid)?;
        if payload.len() != 13 * (n_packets + n_flows) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "trace payload length mismatch",
            ));
        }
        let decode = |chunk: &[u8]| FlowId::from_bytes(chunk.try_into().unwrap());
        let packets = payload[..13 * n_packets]
            .chunks_exact(13)
            .map(decode)
            .collect();
        let flows = payload[13 * n_packets..]
            .chunks_exact(13)
            .map(decode)
            .collect();
        Ok(SyntheticTrace { packets, flows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> TraceConfig {
        TraceConfig {
            distinct_flows: 2000,
            total_packets: 10_000,
            zipf_theta: 0.9,
            seed: 33,
        }
    }

    #[test]
    fn trace_shape_matches_config() {
        let t = SyntheticTrace::generate(&small_cfg());
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.flows.len(), 2000);
        let distinct: std::collections::HashSet<_> = t.packets.iter().collect();
        assert_eq!(distinct.len(), 2000, "every flow must appear");
    }

    #[test]
    fn flow_counts_sum_to_packets() {
        let t = SyntheticTrace::generate(&small_cfg());
        let counts = t.flow_counts();
        assert_eq!(counts.iter().map(|(_, c)| c).sum::<u64>(), 10_000);
        assert!(counts.iter().all(|(_, c)| *c >= 1));
    }

    #[test]
    fn flow_sizes_are_heavy_tailed() {
        let t = SyntheticTrace::generate(&TraceConfig {
            distinct_flows: 2000,
            total_packets: 50_000,
            zipf_theta: 1.1,
            seed: 5,
        });
        let mut counts: Vec<u64> = t.flow_counts().into_iter().map(|(_, c)| c).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // Top 1% of flows should carry a disproportionate share.
        let top: u64 = counts[..20].iter().sum();
        assert!(
            top as f64 / 50_000.0 > 0.15,
            "top-1% share {:.3} too small for a heavy tail",
            top as f64 / 50_000.0
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticTrace::generate(&small_cfg());
        let b = SyntheticTrace::generate(&small_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn file_roundtrip() {
        let t = SyntheticTrace::generate(&TraceConfig {
            distinct_flows: 500,
            total_packets: 2000,
            zipf_theta: 0.8,
            seed: 77,
        });
        let dir = std::env::temp_dir().join("shbf-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.trace");
        t.write_file(&path).unwrap();
        let back = SyntheticTrace::read_file(&path).unwrap();
        assert_eq!(back, t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_file_rejected() {
        let t = SyntheticTrace::generate(&TraceConfig {
            distinct_flows: 100,
            total_packets: 300,
            zipf_theta: 0.8,
            seed: 78,
        });
        let dir = std::env::temp_dir().join("shbf-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.trace");
        t.write_file(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(SyntheticTrace::read_file(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
