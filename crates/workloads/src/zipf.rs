//! Zipf-distributed sampling for heavy-tailed flow sizes.
//!
//! Backbone flow-size distributions are classically heavy-tailed; the paper
//! does not publish its trace's distribution, so the multiplicity workloads
//! default to Zipf (with uniform and fixed alternatives in
//! [`crate::multiset`]). Implementation follows Gray et al., "Quickly
//! generating billion-record synthetic databases" (SIGMOD '94): inverse
//! transform with the closed-form two-point acceleration.

use rand::Rng;

/// A Zipf(θ) sampler over ranks `1..=n` (probability of rank `i` is
/// `i^{−θ} / H_{n,θ}`).
#[derive(Debug, Clone)]
pub struct Zipf {
    n: usize,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// Creates a sampler over `1..=n` with skew `theta` (θ = 0 is uniform;
    /// typical trace skews are 0.8–1.2). `theta` must not be 1.0 exactly
    /// (use 0.999… if needed) and `n ≥ 1`.
    ///
    /// # Panics
    /// Panics if `n == 0`, `theta < 0`, or `theta == 1`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n >= 1, "n must be positive");
        assert!(theta >= 0.0, "theta must be non-negative");
        assert!(
            (theta - 1.0).abs() > 1e-9,
            "theta = 1 is a removable singularity; use 0.999"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2: zeta2.max(1.0),
        }
    }

    /// The generalized harmonic number `H_{n,θ}`.
    fn zeta(n: usize, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Number of ranks.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The skew θ.
    #[inline]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Probability of rank `i` (1-based).
    pub fn pmf(&self, i: usize) -> f64 {
        assert!((1..=self.n).contains(&i));
        1.0 / (i as f64).powf(self.theta) / self.zetan
    }

    /// Samples a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        if self.n == 1 {
            return 1;
        }
        let u: f64 = rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 1;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) && self.zeta2 >= 1.0 {
            return 2;
        }
        let rank = 1.0 + (self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha);
        (rank as usize).clamp(1, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(1000, 0.9);
        let total: f64 = (1..=1000).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank1_frequency_matches_pmf() {
        let z = Zipf::new(10_000, 0.9);
        let mut rng = StdRng::seed_from_u64(3);
        let samples = 200_000;
        let ones = (0..samples).filter(|_| z.sample(&mut rng) == 1).count();
        let measured = ones as f64 / samples as f64;
        let expect = z.pmf(1);
        assert!(
            (measured - expect).abs() / expect < 0.05,
            "measured {measured:.4} vs pmf {expect:.4}"
        );
    }

    #[test]
    fn skew_increases_head_mass() {
        let mut rng = StdRng::seed_from_u64(5);
        let flat = Zipf::new(1000, 0.2);
        let steep = Zipf::new(1000, 1.2);
        let head = |z: &Zipf, rng: &mut StdRng| -> usize {
            (0..50_000).filter(|_| z.sample(rng) <= 10).count()
        };
        let flat_head = head(&flat, &mut rng);
        let steep_head = head(&steep, &mut rng);
        assert!(
            steep_head > 3 * flat_head,
            "steep {steep_head} vs flat {flat_head}"
        );
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(57, 0.99);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50_000 {
            let s = z.sample(&mut rng);
            assert!((1..=57).contains(&s));
        }
    }

    #[test]
    fn n_equals_one_degenerates() {
        let z = Zipf::new(1, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 1);
    }

    #[test]
    #[should_panic(expected = "singularity")]
    fn theta_one_rejected() {
        Zipf::new(10, 1.0);
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let z = Zipf::new(100, 0.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.5, "min {min} max {max}");
    }
}
