//! Query-mix generation matching the paper's experimental procedures.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::flow::FlowId;
use crate::sets::AssociationPair;

/// A membership query with ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipQuery {
    /// The queried flow.
    pub flow: FlowId,
    /// Whether the flow is truly a member.
    pub is_member: bool,
}

/// The paper's Fig. 8 query mix: `2n` queries, `n` of which hit members
/// ("we query 2·n elements, in which n elements belong to the set"),
/// deterministically interleaved.
pub fn membership_mix(members: &[FlowId], seed: u64) -> Vec<MembershipQuery> {
    let negatives = negatives_for(members, members.len(), seed);
    let mut queries: Vec<MembershipQuery> = members
        .iter()
        .map(|f| MembershipQuery {
            flow: *f,
            is_member: true,
        })
        .chain(negatives.into_iter().map(|f| MembershipQuery {
            flow: f,
            is_member: false,
        }))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6D_6978);
    for i in (1..queries.len()).rev() {
        let j = rng.random_range(0..=i);
        queries.swap(i, j);
    }
    queries
}

/// Generates `count` flows guaranteed not to collide with `members`
/// (the FPR probe set; the paper used 7 M non-member queries).
pub fn negatives_for(members: &[FlowId], count: usize, seed: u64) -> Vec<FlowId> {
    let member_set: std::collections::HashSet<FlowId> = members.iter().copied().collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6E_6567); // "neg"
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let f = FlowId::random(&mut rng);
        if !member_set.contains(&f) {
            out.push(f);
        }
    }
    out
}

/// Ground-truth region of an association query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrueRegion {
    /// `e ∈ S1 − S2`.
    S1Only,
    /// `e ∈ S1 ∩ S2`.
    Both,
    /// `e ∈ S2 − S1`.
    S2Only,
}

/// An association query with ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AssociationQuery {
    /// The queried flow.
    pub flow: FlowId,
    /// Which region it truly belongs to.
    pub region: TrueRegion,
}

/// The paper's Fig. 10 mix: queries hit "the three parts with the same
/// probability" — `per_region` samples from each region, interleaved.
pub fn association_mix(
    pair: &AssociationPair,
    per_region: usize,
    seed: u64,
) -> Vec<AssociationQuery> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6173_736F); // "asso"
    let mut pick = |pool: &[FlowId], region: TrueRegion, out: &mut Vec<AssociationQuery>| {
        assert!(!pool.is_empty(), "region pool is empty");
        for _ in 0..per_region {
            let f = pool[rng.random_range(0..pool.len())];
            out.push(AssociationQuery { flow: f, region });
        }
    };
    let mut queries = Vec::with_capacity(3 * per_region);
    pick(&pair.s1_only, TrueRegion::S1Only, &mut queries);
    pick(&pair.both, TrueRegion::Both, &mut queries);
    pick(&pair.s2_only, TrueRegion::S2Only, &mut queries);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x73_6875);
    for i in (1..queries.len()).rev() {
        let j = rng.random_range(0..=i);
        queries.swap(i, j);
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sets::distinct_flows;

    #[test]
    fn membership_mix_is_half_positive() {
        let members = distinct_flows(1000, 3);
        let mix = membership_mix(&members, 9);
        assert_eq!(mix.len(), 2000);
        assert_eq!(mix.iter().filter(|q| q.is_member).count(), 1000);
    }

    #[test]
    fn negatives_never_collide() {
        let members = distinct_flows(2000, 5);
        let negs = negatives_for(&members, 5000, 11);
        let member_set: std::collections::HashSet<_> = members.iter().collect();
        assert!(negs.iter().all(|f| !member_set.contains(f)));
        assert_eq!(negs.len(), 5000);
    }

    #[test]
    fn association_mix_is_region_balanced() {
        let pair = AssociationPair::generate(500, 500, 100, 7);
        let mix = association_mix(&pair, 300, 13);
        assert_eq!(mix.len(), 900);
        for region in [TrueRegion::S1Only, TrueRegion::Both, TrueRegion::S2Only] {
            assert_eq!(mix.iter().filter(|q| q.region == region).count(), 300);
        }
    }

    #[test]
    fn mixes_are_deterministic() {
        let members = distinct_flows(200, 1);
        assert_eq!(membership_mix(&members, 2), membership_mix(&members, 2));
    }
}
