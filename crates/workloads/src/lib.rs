//! # shbf-workloads — workload substrate for the ShBF evaluation
//!
//! The paper evaluates on a real trace captured from a 10 Gbps backbone
//! router: 10 M packets, 8 M distinct 13-byte 5-tuple flow IDs (§6.1). That
//! trace is proprietary, so this crate synthesizes the equivalent (see
//! DESIGN.md §5 for why the substitution preserves behaviour):
//!
//! * [`flow`] — 13-byte 5-tuple flow IDs, the paper's element type;
//! * [`zipf`] — a Zipf(θ) sampler for heavy-tailed flow sizes;
//! * [`trace`] — seeded synthetic packet traces with configurable
//!   distinct-flow count and flow-size distribution, plus a binary
//!   trace-file format;
//! * [`sets`] — set/association-pair builders with exact intersection sizes;
//! * [`multiset`] — multiplicity workloads capped at the paper's `c`;
//! * [`queries`] — query mixes (positive fraction, region-uniform, etc.);
//! * [`stats`] — empirical FPR / correctness-rate / clear-answer-rate
//!   estimators used by the figure harness and the integration tests.
//!
//! All generation is `StdRng`-seeded and fully deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flow;
pub mod multiset;
pub mod queries;
pub mod sets;
pub mod stats;
pub mod trace;
pub mod zipf;

pub use flow::FlowId;
pub use trace::{SyntheticTrace, TraceConfig};
pub use zipf::Zipf;
