//! Set and association-pair builders with exact cardinalities.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::flow::FlowId;

/// Generates `n` distinct flow IDs, deterministically from `seed`.
pub fn distinct_flows(n: usize, seed: u64) -> Vec<FlowId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(n * 2);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let f = FlowId::random(&mut rng);
        if seen.insert(f) {
            out.push(f);
        }
    }
    out
}

/// Generates `k` mutually disjoint sets of `n` distinct flows each.
pub fn disjoint_sets(k: usize, n: usize, seed: u64) -> Vec<Vec<FlowId>> {
    let all = distinct_flows(k * n, seed);
    all.chunks(n).map(|c| c.to_vec()).collect()
}

/// An association workload: two sets with a prescribed intersection.
#[derive(Debug, Clone)]
pub struct AssociationPair {
    /// Elements only in S1 (`n1 − n3` flows).
    pub s1_only: Vec<FlowId>,
    /// Elements in both sets (`n3` flows).
    pub both: Vec<FlowId>,
    /// Elements only in S2 (`n2 − n3` flows).
    pub s2_only: Vec<FlowId>,
}

impl AssociationPair {
    /// Builds sets with `|S1| = n1`, `|S2| = n2`, `|S1 ∩ S2| = n3`.
    ///
    /// # Panics
    /// Panics if `n3 > min(n1, n2)`.
    pub fn generate(n1: usize, n2: usize, n3: usize, seed: u64) -> Self {
        assert!(n3 <= n1.min(n2), "intersection larger than a set");
        let total = (n1 - n3) + n3 + (n2 - n3);
        let all = distinct_flows(total, seed);
        let (s1_only, rest) = all.split_at(n1 - n3);
        let (both, s2_only) = rest.split_at(n3);
        AssociationPair {
            s1_only: s1_only.to_vec(),
            both: both.to_vec(),
            s2_only: s2_only.to_vec(),
        }
    }

    /// The full S1 (`s1_only ∪ both`) as byte keys.
    pub fn s1_bytes(&self) -> Vec<[u8; 13]> {
        self.s1_only
            .iter()
            .chain(self.both.iter())
            .map(|f| f.to_bytes())
            .collect()
    }

    /// The full S2 (`both ∪ s2_only`) as byte keys.
    pub fn s2_bytes(&self) -> Vec<[u8; 13]> {
        self.both
            .iter()
            .chain(self.s2_only.iter())
            .map(|f| f.to_bytes())
            .collect()
    }

    /// Number of distinct elements in the union.
    pub fn n_distinct(&self) -> usize {
        self.s1_only.len() + self.both.len() + self.s2_only.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_flows_are_distinct_and_deterministic() {
        let a = distinct_flows(5000, 42);
        let b = distinct_flows(5000, 42);
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 5000);
    }

    #[test]
    fn disjoint_sets_do_not_overlap() {
        let sets = disjoint_sets(3, 1000, 7);
        let mut all = std::collections::HashSet::new();
        for s in &sets {
            for f in s {
                assert!(all.insert(*f), "duplicate across sets");
            }
        }
        assert_eq!(all.len(), 3000);
    }

    #[test]
    fn association_pair_has_exact_cardinalities() {
        let p = AssociationPair::generate(1000, 800, 250, 9);
        assert_eq!(p.s1_only.len(), 750);
        assert_eq!(p.both.len(), 250);
        assert_eq!(p.s2_only.len(), 550);
        assert_eq!(p.s1_bytes().len(), 1000);
        assert_eq!(p.s2_bytes().len(), 800);
        assert_eq!(p.n_distinct(), 1550);
    }

    #[test]
    #[should_panic(expected = "intersection larger")]
    fn oversized_intersection_rejected() {
        AssociationPair::generate(10, 5, 6, 1);
    }
}
