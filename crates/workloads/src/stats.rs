//! Empirical accuracy estimators shared by the figure harness and the
//! theory-vs-simulation integration tests.

/// Measured false-positive rate: fraction of `probes` for which `contains`
/// returned true. Probes must be known non-members.
pub fn measure_fpr<F>(contains: F, probes: usize) -> f64
where
    F: Fn(usize) -> bool,
{
    assert!(probes > 0);
    let fp = (0..probes).filter(|&i| contains(i)).count();
    fp as f64 / probes as f64
}

/// Relative error between a measured and a theoretical value — the paper's
/// validation metric (§6.2.1: `|FPRs − FPRt| / FPRt`).
pub fn relative_error(measured: f64, theory: f64) -> f64 {
    if theory == 0.0 {
        if measured == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (measured - theory).abs() / theory
    }
}

/// Online mean/variance accumulator (Welford) for timing and rate series.
#[derive(Debug, Clone, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Running {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (n − 1 normalization).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpr_counts_positives() {
        // "Filter" that false-positives on multiples of 10: FPR = 0.1.
        let fpr = measure_fpr(|i| i % 10 == 0, 10_000);
        assert!((fpr - 0.1).abs() < 1e-9);
    }

    #[test]
    fn relative_error_basics() {
        assert!((relative_error(0.11, 0.10) - 0.1).abs() < 1e-12);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(0.1, 0.0).is_infinite());
    }

    #[test]
    fn running_stats_match_closed_form() {
        let mut r = Running::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.push(x);
        }
        assert_eq!(r.count(), 8);
        assert!((r.mean() - 5.0).abs() < 1e-12);
        // Sample std dev of that classic dataset is ~2.138.
        assert!((r.std_dev() - 2.138).abs() < 1e-3);
    }
}
