//! Direct epoll bindings — the crate's single unsafe module.
//!
//! Declared `extern "C"` against the platform libc the binary already
//! links (std links it unconditionally), so no crates.io dependency is
//! needed and offline builds keep working — the same reasoning as
//! `shbf-bits::prefetch`'s intrinsic use. Only the four calls the event
//! loop needs are declared: `epoll_create1`, `epoll_ctl`, `epoll_wait`,
//! and `close` (for the epoll fd itself; sockets are owned and closed by
//! `std::net` types).
//!
//! All unsafety is confined to [`Epoll`]'s methods; the exposed API is
//! safe: the wrapped fd is private, created valid, closed exactly once on
//! drop, and every syscall result is translated to `io::Result`.

#![allow(unsafe_code)]

use std::io;
use std::os::raw::c_int;
use std::os::unix::io::RawFd;

/// Readable readiness.
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, no need to register).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported, no need to register).
pub const EPOLLHUP: u32 = 0x010;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;

/// One readiness event, ABI-compatible with the kernel's
/// `struct epoll_event` (packed on x86_64 only, by kernel definition).
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy, Default)]
pub struct EpollEvent {
    /// Ready-state bitmask (`EPOLLIN` | `EPOLLOUT` | …).
    pub events: u32,
    /// The caller's token, echoed back verbatim.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

fn check(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is
        // mapped to an error, so `fd` is valid when we keep it.
        let fd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` is a live, properly laid-out epoll_event for the
        // duration of the call; the kernel copies it before returning.
        // For EPOLL_CTL_DEL the kernel ignores the pointer (passing a
        // valid one is also fine on pre-2.6.9 semantics).
        check(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` for level-triggered `events`, tagged with `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the registered interest set of `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout_ms` (−1 = forever) for events, filling the
    /// front of `events`. Returns the number ready; `EINTR` is reported
    /// as zero events rather than an error, so callers just re-loop.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let max = events.len().min(c_int::MAX as usize) as c_int;
        if max == 0 {
            return Ok(0);
        }
        // SAFETY: `events` points at `max` writable, properly laid-out
        // entries; the kernel writes at most `max` of them.
        let n = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), max, timeout_ms) };
        match check(n) {
            Ok(n) => Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `fd` is a valid epoll fd we own; closing it exactly once
        // here ends its lifetime.
        unsafe {
            close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn epoll_observes_listener_readiness() {
        let epoll = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        epoll.add(listener.as_raw_fd(), EPOLLIN, 42).unwrap();
        let mut events = [EpollEvent::default(); 8];

        // Nothing pending: a zero-timeout wait returns no events.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        // A pending connection flips the listener readable.
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (data, ready) = {
            let ev = events[0];
            (ev.data, ev.events)
        };
        assert_eq!(data, 42);
        assert_ne!(ready & EPOLLIN, 0);
    }

    #[test]
    fn modify_and_delete_change_interest() {
        let epoll = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (client, server) = {
            let c = TcpStream::connect(addr).unwrap();
            let (s, _) = listener.accept().unwrap();
            (c, s)
        };
        epoll.add(server.as_raw_fd(), EPOLLIN, 7).unwrap();

        let mut events = [EpollEvent::default(); 8];
        let mut c = client;
        c.write_all(b"x").unwrap();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        let data = {
            let ev = events[0];
            ev.data
        };
        assert_eq!(data, 7);

        // Swap interest to write-only: the buffered byte no longer wakes
        // us for EPOLLIN, but an empty socket buffer is instantly
        // writable.
        epoll.modify(server.as_raw_fd(), EPOLLOUT, 8).unwrap();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (data, ready) = {
            let ev = events[0];
            (ev.data, ev.events)
        };
        assert_eq!(data, 8);
        assert_ne!(ready & EPOLLOUT, 0);
        assert_eq!(ready & EPOLLIN, 0);

        // Deleted fds never report again.
        epoll.delete(server.as_raw_fd()).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }
}
