//! Direct epoll + eventfd bindings — the crate's single unsafe module.
//!
//! Declared `extern "C"` against the platform libc the binary already
//! links (std links it unconditionally), so no crates.io dependency is
//! needed and offline builds keep working — the same reasoning as
//! `shbf-bits::prefetch`'s intrinsic use. Only the calls the event loop
//! needs are declared: `epoll_create1`, `epoll_ctl`, `epoll_wait`,
//! `eventfd` plus its 8-byte `read`/`write`, and `close` (for the fds we
//! own; sockets are owned and closed by `std::net` types). Vectored
//! socket writes go through std's `Write::write_vectored`, which is
//! `writev` on Linux — no extra declaration needed.
//!
//! All unsafety is confined to [`Epoll`]'s and [`EventFd`]'s methods; the
//! exposed API is safe: wrapped fds are private, created valid, closed
//! exactly once on drop, and every syscall result is translated to
//! `io::Result`.

#![allow(unsafe_code)]

use std::io;
use std::os::raw::{c_int, c_uint};
use std::os::unix::io::RawFd;

/// Readable readiness.
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, no need to register).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported, no need to register).
pub const EPOLLHUP: u32 = 0x010;
/// Edge-triggered readiness: events fire on state *transitions*, so the
/// consumer must drain to `WouldBlock` (or remember leftover readiness)
/// before waiting again.
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;

/// One readiness event, ABI-compatible with the kernel's
/// `struct epoll_event` (packed on x86_64 only, by kernel definition).
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy, Default)]
pub struct EpollEvent {
    /// Ready-state bitmask (`EPOLLIN` | `EPOLLOUT` | …).
    pub events: u32,
    /// The caller's token, echoed back verbatim.
    pub data: u64,
}

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

fn check(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is
        // mapped to an error, so `fd` is valid when we keep it.
        let fd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` is a live, properly laid-out epoll_event for the
        // duration of the call; the kernel copies it before returning.
        // For EPOLL_CTL_DEL the kernel ignores the pointer (passing a
        // valid one is also fine on pre-2.6.9 semantics).
        check(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` for level-triggered `events`, tagged with `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the registered interest set of `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout_ms` (−1 = forever) for events, filling the
    /// front of `events`. Returns the number ready; `EINTR` is reported
    /// as zero events rather than an error, so callers just re-loop.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let max = events.len().min(c_int::MAX as usize) as c_int;
        if max == 0 {
            return Ok(0);
        }
        // SAFETY: `events` points at `max` writable, properly laid-out
        // entries; the kernel writes at most `max` of them.
        let n = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), max, timeout_ms) };
        match check(n) {
            Ok(n) => Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `fd` is a valid epoll fd we own; closing it exactly once
        // here ends its lifetime.
        unsafe {
            close(self.fd);
        }
    }
}

/// An owned, nonblocking eventfd — the wakeup channel that lets another
/// thread nudge a loop blocked in [`Epoll::wait`] without any poll
/// timeout. A [`notify`](EventFd::notify) adds to the kernel counter
/// (readable-edge for every epoll instance watching the fd);
/// [`drain`](EventFd::drain) zeroes it again.
#[derive(Debug)]
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Creates a close-on-exec, nonblocking eventfd with a zero counter.
    pub fn new() -> io::Result<EventFd> {
        // SAFETY: eventfd takes no pointers; a negative return is mapped
        // to an error, so `fd` is valid when we keep it.
        let fd = check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { fd })
    }

    /// The raw fd, for registering with an epoll instance.
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Adds 1 to the counter, waking every waiter. A full counter
    /// (`WouldBlock`) already guarantees pending wakeups, so it is
    /// reported as success; `EINTR` is retried — waiters block with no
    /// timeout, so a wakeup must never be silently dropped.
    pub fn notify(&self) -> io::Result<()> {
        let one = 1u64.to_ne_bytes();
        loop {
            // SAFETY: `one` is 8 valid bytes for the duration of the call.
            let n = unsafe { write(self.fd, one.as_ptr(), one.len()) };
            if n == 8 {
                return Ok(());
            }
            let e = io::Error::last_os_error();
            match e.kind() {
                io::ErrorKind::WouldBlock => return Ok(()),
                io::ErrorKind::Interrupted => continue,
                _ => return Err(e),
            }
        }
    }

    /// Zeroes the counter (nonblocking; an already-empty counter is fine).
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: `buf` is 8 writable bytes for the duration of the call.
        unsafe {
            read(self.fd, buf.as_mut_ptr(), buf.len());
        }
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: `fd` is a valid eventfd we own; closed exactly once.
        unsafe {
            close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn epoll_observes_listener_readiness() {
        let epoll = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        epoll.add(listener.as_raw_fd(), EPOLLIN, 42).unwrap();
        let mut events = [EpollEvent::default(); 8];

        // Nothing pending: a zero-timeout wait returns no events.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        // A pending connection flips the listener readable.
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (data, ready) = {
            let ev = events[0];
            (ev.data, ev.events)
        };
        assert_eq!(data, 42);
        assert_ne!(ready & EPOLLIN, 0);
    }

    #[test]
    fn modify_and_delete_change_interest() {
        let epoll = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (client, server) = {
            let c = TcpStream::connect(addr).unwrap();
            let (s, _) = listener.accept().unwrap();
            (c, s)
        };
        epoll.add(server.as_raw_fd(), EPOLLIN, 7).unwrap();

        let mut events = [EpollEvent::default(); 8];
        let mut c = client;
        c.write_all(b"x").unwrap();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        let data = {
            let ev = events[0];
            ev.data
        };
        assert_eq!(data, 7);

        // Swap interest to write-only: the buffered byte no longer wakes
        // us for EPOLLIN, but an empty socket buffer is instantly
        // writable.
        epoll.modify(server.as_raw_fd(), EPOLLOUT, 8).unwrap();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (data, ready) = {
            let ev = events[0];
            (ev.data, ev.events)
        };
        assert_eq!(data, 8);
        assert_ne!(ready & EPOLLOUT, 0);
        assert_eq!(ready & EPOLLIN, 0);

        // Deleted fds never report again.
        epoll.delete(server.as_raw_fd()).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn eventfd_wakes_a_blocked_wait_without_a_timeout() {
        let epoll = Epoll::new().unwrap();
        let efd = std::sync::Arc::new(EventFd::new().unwrap());
        epoll.add(efd.raw_fd(), EPOLLIN | EPOLLET, 99).unwrap();
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "spurious wake");

        let notifier = std::sync::Arc::clone(&efd);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            notifier.notify().unwrap();
        });
        // Infinite timeout: only the notify can end this wait.
        let n = epoll.wait(&mut events, -1).unwrap();
        t.join().unwrap();
        assert_eq!(n, 1);
        let data = {
            let ev = events[0];
            ev.data
        };
        assert_eq!(data, 99);
        efd.drain();
        // Drained and edge-triggered: no further events until re-notified.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        efd.notify().unwrap();
        assert_eq!(epoll.wait(&mut events, 200).unwrap(), 1);
    }
}
