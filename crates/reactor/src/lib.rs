//! # shbf-reactor — a std-only epoll event loop for line-protocol servers
//!
//! The thread-per-connection transport in `shbf-server` spends one
//! `write`+`flush` syscall pair per reply and one scheduler slot per
//! client; at ShBF query speeds (~1 memory access per hash pair) the
//! transport, not the filter, is the bottleneck. This crate provides the
//! evented alternative: a single-threaded (or N-threaded, one loop per
//! thread) **epoll** reactor with
//!
//! * nonblocking accept off a shared [`Listener`] — TCP or UNIX-domain,
//! * per-connection growable read buffers and a per-connection
//!   [write queue of reply buffers](Handler::on_data),
//! * **edge-triggered readiness** (`EPOLLET`): interest is registered
//!   once per connection and never modified again — no `epoll_ctl`
//!   traffic on the hot path; leftover readiness is remembered in
//!   userspace and re-driven fairly under a per-turn read budget,
//! * an **eventfd wakeup channel** ([`Waker`]): loops block in
//!   `epoll_wait` with *no timeout* and are nudged explicitly for
//!   shutdown, so stopping a reactor costs microseconds instead of a
//!   poll interval,
//! * **pipelined parsing** — each readable event hands the application
//!   *all* buffered bytes at once, so batches form naturally from
//!   pipelined clients,
//! * **vectored writes** — each event-loop turn's replies land in their
//!   own buffer and the queue is flushed with `writev`
//!   (`Write::write_vectored`), so a backlogged connection never pays a
//!   coalescing copy or a drain memmove; partial writes just re-slice
//!   the iovec,
//! * **backpressure** — a connection whose write queue exceeds
//!   [`ReactorConfig::high_water`] stops being read until the peer
//!   drains it below half the mark (entries/exits are counted in
//!   [`TransportMetrics`]).
//!
//! Following the `shbf-bits::prefetch` precedent, the build stays offline
//! and dependency-free: the epoll/eventfd interface is declared directly
//! with `extern "C"` in [`sys`], the crate's **single unsafe module**.
//! Sockets themselves are plain `std::net` / `std::os::unix::net` types,
//! so the unsafe surface is exactly the epoll/eventfd/close calls.
//!
//! epoll is Linux-only; on other targets [`run`] returns
//! `ErrorKind::Unsupported` and callers should fall back to a blocking
//! transport (check [`SUPPORTED`] first).
//!
//! ## Driving a protocol
//!
//! The application implements [`Handler`]. On every readable event the
//! reactor appends fresh bytes to the connection's read buffer and calls
//! [`Handler::on_data`] with the *entire* unconsumed buffer; the handler
//! consumes as many complete requests as it finds, appends encoded
//! replies to `out`, and reports the consumed byte count — unconsumed
//! bytes (a partial line) stay buffered for the next event. On EOF the
//! handler is called once more with `eof = true` so trailing unterminated
//! input can be served the way a blocking `read_line` loop would.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

#[cfg(target_os = "linux")]
pub mod sys;

#[cfg(target_os = "linux")]
mod evloop;

/// Whether the evented reactor is available on this target.
pub const SUPPORTED: bool = cfg!(target_os = "linux");

/// A bound listening socket the reactor (or a blocking accept loop) can
/// serve: loopback/remote TCP or a UNIX-domain socket path. UNIX sockets
/// skip TCP/IP framing entirely — for same-host clients they cut both
/// syscall cost and latency.
#[derive(Debug)]
pub enum Listener {
    /// A TCP listening socket.
    Tcp(TcpListener),
    /// A UNIX-domain listening socket.
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
}

impl From<TcpListener> for Listener {
    fn from(l: TcpListener) -> Listener {
        Listener::Tcp(l)
    }
}

#[cfg(unix)]
impl From<std::os::unix::net::UnixListener> for Listener {
    fn from(l: std::os::unix::net::UnixListener) -> Listener {
        Listener::Unix(l)
    }
}

impl Listener {
    /// Accepts one connection (blocking or not per `set_nonblocking`).
    pub fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }

    /// Switches accept (and accepted sockets' initial mode) blocking/not.
    pub fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
        }
    }

    /// Clones the handle (both clones accept from the same queue), so one
    /// bound socket can feed several reactor loops.
    pub fn try_clone(&self) -> std::io::Result<Listener> {
        match self {
            Listener::Tcp(l) => l.try_clone().map(Listener::Tcp),
            #[cfg(unix)]
            Listener::Unix(l) => l.try_clone().map(Listener::Unix),
        }
    }

    #[cfg(target_os = "linux")]
    pub(crate) fn raw_fd(&self) -> std::os::unix::io::RawFd {
        use std::os::unix::io::AsRawFd;
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Unix(l) => l.as_raw_fd(),
        }
    }
}

/// One accepted connection, TCP or UNIX-domain. Implements `Read`/`Write`
/// (vectored writes included) so protocol code is transport-agnostic.
#[derive(Debug)]
pub enum Stream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A UNIX-domain connection.
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Stream {
    /// Clones the handle (shared file description, independent handle).
    pub fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    /// Switches blocking mode.
    pub fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(nonblocking),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }

    /// Bounds blocking reads (used by the threaded transport's poll loop).
    pub fn set_read_timeout(&self, dur: Option<std::time::Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(dur),
        }
    }

    /// Disables Nagle on TCP; a no-op on UNIX sockets (no such batching).
    pub fn set_nodelay(&self, nodelay: bool) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nodelay(nodelay),
            #[cfg(unix)]
            Stream::Unix(_) => Ok(()),
        }
    }

    /// Shuts down one or both directions.
    pub fn shutdown(&self, how: std::net::Shutdown) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.shutdown(how),
            #[cfg(unix)]
            Stream::Unix(s) => s.shutdown(how),
        }
    }

    #[cfg(target_os = "linux")]
    pub(crate) fn raw_fd(&self) -> std::os::unix::io::RawFd {
        use std::os::unix::io::AsRawFd;
        match self {
            Stream::Tcp(s) => s.as_raw_fd(),
            Stream::Unix(s) => s.as_raw_fd(),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn write_vectored(&mut self, bufs: &[std::io::IoSlice<'_>]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write_vectored(bufs),
            #[cfg(unix)]
            Stream::Unix(s) => s.write_vectored(bufs),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A cloneable handle that wakes reactor loops blocked in `epoll_wait`.
///
/// One waker (its eventfd) may be registered with *several* loops: a
/// single [`wake`](Waker::wake) delivers a readable edge to every epoll
/// instance watching it, so "set the shutdown flag, wake once" stops a
/// whole fleet of sibling loops with no poll-timeout stall. On non-Linux
/// targets the type exists but wakes nothing (the reactor is unsupported
/// there anyway).
#[derive(Debug, Clone)]
pub struct Waker {
    #[cfg(target_os = "linux")]
    fd: std::sync::Arc<sys::EventFd>,
}

impl Waker {
    /// Creates a waker with a fresh eventfd.
    #[cfg(target_os = "linux")]
    pub fn new() -> std::io::Result<Waker> {
        Ok(Waker {
            fd: std::sync::Arc::new(sys::EventFd::new()?),
        })
    }

    /// Non-Linux stub: a waker that wakes nothing.
    #[cfg(not(target_os = "linux"))]
    pub fn new() -> std::io::Result<Waker> {
        Ok(Waker {})
    }

    /// Nudges every loop whose epoll watches this waker.
    pub fn wake(&self) -> std::io::Result<()> {
        #[cfg(target_os = "linux")]
        return self.fd.notify();
        #[cfg(not(target_os = "linux"))]
        Ok(())
    }

    #[cfg(target_os = "linux")]
    pub(crate) fn eventfd(&self) -> &sys::EventFd {
        &self.fd
    }
}

/// Shared, lock-free connection-level counters, updated by reactor loops
/// (and, for the portable counters, by blocking transports) and read by
/// whatever surfaces them — `shbf-server` reports them as the
/// `STATS transport` section.
#[derive(Debug, Default)]
pub struct TransportMetrics {
    accepted: AtomicU64,
    closed: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    backpressure_enter: AtomicU64,
    backpressure_exit: AtomicU64,
    queue_high_water: AtomicU64,
    wakeups: AtomicU64,
    shed: AtomicU64,
    idle_reaped: AtomicU64,
}

/// A point-in-time copy of [`TransportMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportSnapshot {
    /// Connections accepted since start.
    pub accepted: u64,
    /// Connections closed since start (any cause).
    pub closed: u64,
    /// Request bytes read off sockets.
    pub bytes_in: u64,
    /// Reply bytes written to sockets.
    pub bytes_out: u64,
    /// Times a connection's write queue crossed the high-water mark and
    /// paused reading.
    pub backpressure_enter: u64,
    /// Times a paused connection drained below the half-mark and resumed.
    pub backpressure_exit: u64,
    /// Largest write-queue depth (bytes) any connection ever reached.
    pub queue_high_water: u64,
    /// Eventfd wakeups observed by reactor loops.
    pub wakeups: u64,
    /// Connections shed at the capacity limit with a busy reply instead
    /// of being served.
    pub shed: u64,
    /// Connections closed by the idle-deadline reaper.
    pub idle_reaped: u64,
}

impl TransportMetrics {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        TransportMetrics::default()
    }

    /// Records an accepted connection.
    pub fn on_accept(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a closed connection.
    pub fn on_close(&self) {
        self.closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds request bytes read.
    pub fn add_bytes_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds reply bytes written.
    pub fn add_bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a connection entering backpressure (reading paused).
    pub fn on_backpressure_enter(&self) {
        self.backpressure_enter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection leaving backpressure (reading resumed).
    pub fn on_backpressure_exit(&self) {
        self.backpressure_exit.fetch_add(1, Ordering::Relaxed);
    }

    /// Raises the write-queue high-water mark to `depth` if larger.
    pub fn observe_queue_depth(&self, depth: u64) {
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records one eventfd wakeup.
    pub fn on_wakeup(&self) {
        self.wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection shed at the capacity limit (busy-replied and
    /// closed instead of served).
    pub fn on_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection closed by the idle-deadline reaper.
    pub fn on_idle_reap(&self) {
        self.idle_reaped.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies all counters out.
    pub fn snapshot(&self) -> TransportSnapshot {
        TransportSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            backpressure_enter: self.backpressure_enter.load(Ordering::Relaxed),
            backpressure_exit: self.backpressure_exit.load(Ordering::Relaxed),
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            idle_reaped: self.idle_reaped.load(Ordering::Relaxed),
        }
    }
}

/// Tunables for [`run`].
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Backpressure mark in bytes: a connection whose write queue exceeds
    /// this stops being read (its socket stays readable in the kernel, so
    /// TCP flow control eventually pushes back on the peer). Reading
    /// resumes once the queue drains below `high_water / 2`.
    pub high_water: usize,
    /// Maximum concurrent connections this reactor accepts. Beyond it:
    /// with [`Self::shed_reply`] set, excess connections are accepted,
    /// sent that reply, and closed (overload shedding); without it,
    /// pending connections wait in the listen backlog until a slot
    /// frees (exactly like the threaded transport's semaphore).
    pub max_connections: usize,
    /// Overload-shed farewell bytes (e.g. `-ERR busy\r\n`) written
    /// best-effort to connections accepted past `max_connections`.
    /// `None` parks the listener instead of shedding.
    pub shed_reply: Option<std::sync::Arc<[u8]>>,
    /// Close connections with no inbound bytes for this long. `None`
    /// disables reaping (and the loop blocks in `epoll_wait` with no
    /// timeout when idle).
    pub idle_timeout: Option<std::time::Duration>,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            high_water: 1 << 20,
            max_connections: 1024,
            shed_reply: None,
            idle_timeout: None,
        }
    }
}

/// What the reactor should do with a connection after [`Handler::on_data`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Keep serving.
    Continue,
    /// Flush the write queue, then close this connection.
    Close,
    /// Flush this connection's write queue, then stop the whole reactor
    /// (sets the shared shutdown flag and wakes sibling loops through the
    /// waker, so they stop too).
    Shutdown,
}

/// Result of one [`Handler::on_data`] call.
#[derive(Debug, Clone, Copy)]
pub struct Drained {
    /// How many leading bytes of `input` were consumed. The rest (at most
    /// a partial request) stays buffered. Clamped to `input.len()`.
    pub consumed: usize,
    /// What to do with the connection next.
    pub action: Action,
}

impl Drained {
    /// Consumed `n` bytes, keep serving.
    pub fn consumed(n: usize) -> Drained {
        Drained {
            consumed: n,
            action: Action::Continue,
        }
    }
}

/// The application side of the reactor: a protocol parser + dispatcher.
///
/// Tokens identify live connections; they are reused after a connection
/// closes ([`Handler::on_close`] marks the boundary), never across two
/// *simultaneously* live connections.
pub trait Handler {
    /// Called with every byte buffered on `token` (not just the newest
    /// read): consume complete requests, append encoded replies to `out`,
    /// report the consumed prefix length. `eof` means the peer half-closed
    /// — no more input will ever arrive, so an unterminated trailing
    /// request should be handled now or never.
    ///
    /// `out` is this turn's reply buffer: it joins the connection's write
    /// queue as its own iovec slice, so replies are never copied into a
    /// coalesced buffer — `writev` stitches queued turns together at the
    /// syscall.
    fn on_data(&mut self, token: u64, input: &[u8], eof: bool, out: &mut Vec<u8>) -> Drained;

    /// The connection is gone (peer closed, error, or [`Action::Close`]);
    /// drop any per-connection state held for `token`.
    fn on_close(&mut self, _token: u64) {}
}

/// Runs the event loop on the calling thread until `shutdown` is observed
/// true or a handler returns [`Action::Shutdown`] (which also sets the
/// flag). The loop blocks in `epoll_wait` with **no timeout**; after
/// setting `shutdown`, call [`Waker::wake`] on the waker passed here (it
/// may be shared by several loops — one wake stops them all). The
/// listener may also be shared (`try_clone`) across several `run` calls
/// on different threads: accepts are nonblocking, so whichever loop wakes
/// first wins and the rest see `WouldBlock`.
#[cfg(target_os = "linux")]
pub fn run<H: Handler>(
    listener: Listener,
    handler: &mut H,
    shutdown: &AtomicBool,
    config: &ReactorConfig,
    waker: &Waker,
    metrics: &TransportMetrics,
) -> std::io::Result<()> {
    evloop::run(listener, handler, shutdown, config, waker, metrics)
}

/// Non-Linux stub: always `ErrorKind::Unsupported`.
#[cfg(not(target_os = "linux"))]
pub fn run<H: Handler>(
    _listener: Listener,
    _handler: &mut H,
    _shutdown: &AtomicBool,
    _config: &ReactorConfig,
    _waker: &Waker,
    _metrics: &TransportMetrics,
) -> std::io::Result<()> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "shbf-reactor requires epoll (Linux); use the threaded transport",
    ))
}
