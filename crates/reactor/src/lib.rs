//! # shbf-reactor — a std-only epoll event loop for line-protocol servers
//!
//! The thread-per-connection transport in `shbf-server` spends one
//! `write`+`flush` syscall pair per reply and one scheduler slot per
//! client; at ShBF query speeds (~1 memory access per hash pair) the
//! transport, not the filter, is the bottleneck. This crate provides the
//! evented alternative: a single-threaded (or N-threaded, one loop per
//! thread) **epoll** reactor with
//!
//! * nonblocking accept off a shared listener,
//! * per-connection growable read/write buffers,
//! * level-triggered readiness,
//! * **pipelined parsing** — each readable event hands the application
//!   *all* buffered bytes at once, so batches form naturally from
//!   pipelined clients,
//! * **write coalescing** — replies accumulate in the connection's write
//!   buffer and go out in one `write` per event-loop turn,
//! * **backpressure** — a connection whose write buffer exceeds
//!   [`ReactorConfig::high_water`] stops being read until the peer drains
//!   it below half the mark.
//!
//! Following the `shbf-bits::prefetch` precedent, the build stays offline
//! and dependency-free: the epoll interface is declared directly with
//! `extern "C"` in [`sys`], the crate's **single unsafe module**. Sockets
//! themselves are plain `std::net` types (std already wraps `fcntl`'s
//! `O_NONBLOCK` as `set_nonblocking`), so the unsafe surface is exactly
//! the four epoll/close calls.
//!
//! epoll is Linux-only; on other targets [`run`] returns
//! `ErrorKind::Unsupported` and callers should fall back to a blocking
//! transport (check [`SUPPORTED`] first).
//!
//! ## Driving a protocol
//!
//! The application implements [`Handler`]. On every readable event the
//! reactor appends fresh bytes to the connection's read buffer and calls
//! [`Handler::on_data`] with the *entire* unconsumed buffer; the handler
//! consumes as many complete requests as it finds, appends encoded
//! replies to `out`, and reports the consumed byte count — unconsumed
//! bytes (a partial line) stay buffered for the next event. On EOF the
//! handler is called once more with `eof = true` so trailing unterminated
//! input can be served the way a blocking `read_line` loop would.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::net::TcpListener;
use std::sync::atomic::AtomicBool;

#[cfg(target_os = "linux")]
pub mod sys;

#[cfg(target_os = "linux")]
mod evloop;

/// Whether the evented reactor is available on this target.
pub const SUPPORTED: bool = cfg!(target_os = "linux");

/// Tunables for [`run`].
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Backpressure mark in bytes: a connection whose write buffer exceeds
    /// this stops being read (its socket stays readable in the kernel, so
    /// TCP flow control eventually pushes back on the peer). Reading
    /// resumes once the buffer drains below `high_water / 2`.
    pub high_water: usize,
    /// Maximum concurrent connections this reactor accepts; beyond it the
    /// listener is parked until a slot frees (the TCP backlog absorbs the
    /// burst, exactly like the threaded transport's semaphore).
    pub max_connections: usize,
    /// `epoll_wait` timeout in milliseconds — the latency bound on
    /// observing an external shutdown flag flip.
    pub wait_timeout_ms: i32,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            high_water: 1 << 20,
            max_connections: 1024,
            wait_timeout_ms: 100,
        }
    }
}

/// What the reactor should do with a connection after [`Handler::on_data`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Keep serving.
    Continue,
    /// Flush the write buffer, then close this connection.
    Close,
    /// Flush this connection's write buffer, then stop the whole reactor
    /// (sets the shared shutdown flag, so sibling reactors stop too).
    Shutdown,
}

/// Result of one [`Handler::on_data`] call.
#[derive(Debug, Clone, Copy)]
pub struct Drained {
    /// How many leading bytes of `input` were consumed. The rest (at most
    /// a partial request) stays buffered. Clamped to `input.len()`.
    pub consumed: usize,
    /// What to do with the connection next.
    pub action: Action,
}

impl Drained {
    /// Consumed `n` bytes, keep serving.
    pub fn consumed(n: usize) -> Drained {
        Drained {
            consumed: n,
            action: Action::Continue,
        }
    }
}

/// The application side of the reactor: a protocol parser + dispatcher.
///
/// Tokens identify live connections; they are reused after a connection
/// closes ([`Handler::on_close`] marks the boundary), never across two
/// *simultaneously* live connections.
pub trait Handler {
    /// Called with every byte buffered on `token` (not just the newest
    /// read): consume complete requests, append encoded replies to `out`,
    /// report the consumed prefix length. `eof` means the peer half-closed
    /// — no more input will ever arrive, so an unterminated trailing
    /// request should be handled now or never.
    fn on_data(&mut self, token: u64, input: &[u8], eof: bool, out: &mut Vec<u8>) -> Drained;

    /// The connection is gone (peer closed, error, or [`Action::Close`]);
    /// drop any per-connection state held for `token`.
    fn on_close(&mut self, _token: u64) {}
}

/// Runs the event loop on the calling thread until `shutdown` is observed
/// true (checked every [`ReactorConfig::wait_timeout_ms`]) or a handler
/// returns [`Action::Shutdown`] (which also sets the flag). The listener
/// may be shared (`try_clone`) across several `run` calls on different
/// threads: accepts are nonblocking, so whichever loop wakes first wins
/// and the rest see `WouldBlock`.
#[cfg(target_os = "linux")]
pub fn run<H: Handler>(
    listener: TcpListener,
    handler: &mut H,
    shutdown: &AtomicBool,
    config: &ReactorConfig,
) -> std::io::Result<()> {
    evloop::run(listener, handler, shutdown, config)
}

/// Non-Linux stub: always `ErrorKind::Unsupported`.
#[cfg(not(target_os = "linux"))]
pub fn run<H: Handler>(
    _listener: TcpListener,
    _handler: &mut H,
    _shutdown: &AtomicBool,
    _config: &ReactorConfig,
) -> std::io::Result<()> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "shbf-reactor requires epoll (Linux); use the threaded transport",
    ))
}
