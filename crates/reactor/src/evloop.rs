//! The event loop proper: slab of buffered connections driven by
//! level-triggered epoll readiness. All code here is safe; syscalls are
//! behind [`crate::sys::Epoll`].

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};
use crate::{Action, Handler, ReactorConfig};

/// Token of the listening socket (connection tokens encode slot + gen).
const LISTENER_TOKEN: u64 = u64::MAX;

/// Stack read chunk; also the granularity of the per-turn read budget.
const READ_CHUNK: usize = 64 * 1024;

/// Per-turn read budget per connection: after this many fresh bytes the
/// loop moves on to other connections and lets level-triggered readiness
/// re-arm — a single fast writer cannot starve the rest.
const READ_BUDGET: usize = 4 * READ_CHUNK;

struct Conn {
    stream: TcpStream,
    token: u64,
    /// Bytes received but not yet consumed by the handler (at most a
    /// partial request once the handler has run).
    rbuf: Vec<u8>,
    /// Encoded replies not yet written to the socket.
    wbuf: Vec<u8>,
    /// Interest set currently registered with epoll.
    interest: u32,
    /// Flush `wbuf` then close (peer EOF, handler `Close`/`Shutdown`).
    closing: bool,
    /// Peer half-closed its sending side; no more input will arrive.
    eof: bool,
    /// Backpressured: `wbuf` crossed the high-water mark, reading paused.
    paused: bool,
}

/// Slot index ↔ token mapping with a generation stamp, so an event queued
/// for a connection that closed earlier in the same batch can never be
/// routed to a newly accepted connection reusing the slot.
fn token_of(slot: usize, generation: u32) -> u64 {
    ((generation as u64) << 32) | slot as u64
}

fn slot_of(token: u64) -> usize {
    (token & 0xFFFF_FFFF) as usize
}

struct Reactor<'a, H: Handler> {
    epoll: Epoll,
    listener: TcpListener,
    listener_parked: bool,
    conns: Vec<Option<Conn>>,
    generations: Vec<u32>,
    free: Vec<usize>,
    live: usize,
    handler: &'a mut H,
    shutdown: &'a AtomicBool,
    config: &'a ReactorConfig,
}

pub(crate) fn run<H: Handler>(
    listener: TcpListener,
    handler: &mut H,
    shutdown: &AtomicBool,
    config: &ReactorConfig,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    epoll.add(listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN)?;
    let mut r = Reactor {
        epoll,
        listener,
        listener_parked: false,
        conns: Vec::new(),
        generations: Vec::new(),
        free: Vec::new(),
        live: 0,
        handler,
        shutdown,
        config,
    };
    let mut events = vec![EpollEvent::default(); 256];
    let mut chunk = vec![0u8; READ_CHUNK];
    loop {
        let n = r.epoll.wait(&mut events, r.config.wait_timeout_ms)?;
        if r.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        for ev in events.iter().copied().take(n) {
            if ev.data == LISTENER_TOKEN {
                r.accept_ready();
            } else {
                r.conn_ready(ev, &mut chunk);
            }
            if r.shutdown.load(Ordering::SeqCst) {
                // A handler requested shutdown; its farewell reply was
                // already flushed by `conn_ready`. Sibling reactors see
                // the shared flag within one wait timeout.
                return Ok(());
            }
        }
    }
}

impl<H: Handler> Reactor<'_, H> {
    fn accept_ready(&mut self) {
        loop {
            if self.live >= self.config.max_connections {
                self.park_listener();
                return;
            }
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return, // transient accept error; keep serving
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            stream.set_nodelay(true).ok();
            let slot = self.free.pop().unwrap_or_else(|| {
                self.conns.push(None);
                self.generations.push(0);
                self.conns.len() - 1
            });
            let token = token_of(slot, self.generations[slot]);
            if self.epoll.add(stream.as_raw_fd(), EPOLLIN, token).is_err() {
                self.free.push(slot);
                continue;
            }
            self.conns[slot] = Some(Conn {
                stream,
                token,
                rbuf: Vec::new(),
                wbuf: Vec::new(),
                interest: EPOLLIN,
                closing: false,
                eof: false,
                paused: false,
            });
            self.live += 1;
        }
    }

    fn park_listener(&mut self) {
        if !self.listener_parked {
            self.epoll.delete(self.listener.as_raw_fd()).ok();
            self.listener_parked = true;
        }
    }

    fn unpark_listener(&mut self) {
        if self.listener_parked
            && self.live < self.config.max_connections
            && self
                .epoll
                .add(self.listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN)
                .is_ok()
        {
            self.listener_parked = false;
        }
    }

    fn conn_ready(&mut self, ev: EpollEvent, chunk: &mut [u8]) {
        let slot = slot_of(ev.data);
        // Stale event for a connection closed earlier in this batch (or a
        // reused slot with a newer generation): ignore.
        match self.conns.get(slot) {
            Some(Some(conn)) if conn.token == ev.data => {}
            _ => return,
        }
        if ev.events & (EPOLLERR | EPOLLHUP) != 0 {
            self.close(slot);
            return;
        }
        let mut ran_handler = false;
        if ev.events & EPOLLIN != 0 {
            if !self.fill_read_buffer(slot, chunk) {
                return; // closed on read error
            }
            ran_handler = true;
            if !self.drive_handler(slot) {
                return; // closed while dispatching
            }
        }
        // One coalesced write per turn: everything the handler just
        // produced — plus anything still pending — goes out together.
        if !self.try_flush(slot) {
            return;
        }
        // Peer EOF with nothing buffered and no handler pass this turn
        // (pure EPOLLOUT wake): nothing more can happen once drained.
        let _ = ran_handler;
        self.update_interest(slot);
    }

    /// Reads until `WouldBlock`, EOF, or the per-turn budget. Returns
    /// false if the connection was closed (read error).
    fn fill_read_buffer(&mut self, slot: usize, chunk: &mut [u8]) -> bool {
        let conn = self.conns[slot].as_mut().expect("checked live");
        let mut fresh = 0usize;
        loop {
            if fresh >= READ_BUDGET {
                return true; // level-triggered readiness will re-fire
            }
            match conn.stream.read(chunk) {
                Ok(0) => {
                    conn.eof = true;
                    return true;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    fresh += n;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return false;
                }
            }
        }
    }

    /// Hands the buffered bytes to the handler and applies its verdict.
    /// Returns false if the connection was closed.
    fn drive_handler(&mut self, slot: usize) -> bool {
        let conn = self.conns[slot].as_mut().expect("checked live");
        if conn.closing || (conn.rbuf.is_empty() && !conn.eof) {
            return true;
        }
        let drained = self
            .handler
            .on_data(conn.token, &conn.rbuf, conn.eof, &mut conn.wbuf);
        let consumed = drained.consumed.min(conn.rbuf.len());
        conn.rbuf.drain(..consumed);
        match drained.action {
            Action::Continue => {
                if conn.eof {
                    // The final (possibly unterminated) input was just
                    // handled; whatever remains can never complete.
                    conn.closing = true;
                }
            }
            Action::Close => conn.closing = true,
            Action::Shutdown => {
                conn.closing = true;
                self.shutdown.store(true, Ordering::SeqCst);
            }
        }
        true
    }

    /// Writes as much of `wbuf` as the socket accepts right now. Returns
    /// false if the connection was closed.
    fn try_flush(&mut self, slot: usize) -> bool {
        let conn = self.conns[slot].as_mut().expect("checked live");
        let mut written = 0usize;
        let result = loop {
            if written == conn.wbuf.len() {
                break true;
            }
            match conn.stream.write(&conn.wbuf[written..]) {
                Ok(0) => break false,
                Ok(n) => written += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break false,
            }
        };
        if written > 0 {
            conn.wbuf.drain(..written);
        }
        if !result {
            self.close(slot);
        }
        result
    }

    /// Recomputes backpressure state and the epoll interest set; closes
    /// the connection when it is `closing` (or at EOF) with nothing left
    /// to write.
    fn update_interest(&mut self, slot: usize) {
        let high = self.config.high_water.max(1);
        let conn = self.conns[slot].as_mut().expect("checked live");
        if conn.wbuf.is_empty() && (conn.closing || conn.eof) {
            self.close(slot);
            return;
        }
        if conn.wbuf.len() > high {
            conn.paused = true;
        } else if conn.wbuf.len() < high / 2 + 1 {
            conn.paused = false;
        }
        let mut want = 0u32;
        if !conn.closing && !conn.eof && !conn.paused {
            want |= EPOLLIN;
        }
        if !conn.wbuf.is_empty() {
            want |= EPOLLOUT;
        }
        if want != conn.interest {
            let token = conn.token;
            let fd = conn.stream.as_raw_fd();
            if self.epoll.modify(fd, want, token).is_err() {
                self.close(slot);
                return;
            }
            let conn = self.conns[slot].as_mut().expect("checked live");
            conn.interest = want;
        }
    }

    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            self.epoll.delete(conn.stream.as_raw_fd()).ok();
            self.handler.on_close(conn.token);
            self.generations[slot] = self.generations[slot].wrapping_add(1);
            self.free.push(slot);
            self.live -= 1;
            self.unpark_listener();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Drained;
    use std::net::TcpStream;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    /// Upper-cases complete LF-terminated lines; `STOP` shuts down.
    struct UpcaseLines {
        closed: Vec<u64>,
    }

    impl Handler for UpcaseLines {
        fn on_data(&mut self, _token: u64, input: &[u8], eof: bool, out: &mut Vec<u8>) -> Drained {
            let mut consumed = 0;
            while let Some(nl) = input[consumed..].iter().position(|&b| b == b'\n') {
                let line = &input[consumed..consumed + nl];
                consumed += nl + 1;
                if line == b"STOP" {
                    out.extend_from_slice(b"BYE\n");
                    return Drained {
                        consumed,
                        action: Action::Shutdown,
                    };
                }
                if line == b"CLOSE" {
                    out.extend_from_slice(b"BYE\n");
                    return Drained {
                        consumed,
                        action: Action::Close,
                    };
                }
                out.extend(line.iter().map(|b| b.to_ascii_uppercase()));
                out.push(b'\n');
            }
            if eof && consumed < input.len() {
                // Trailing unterminated line: serve it, like read_line.
                out.extend(input[consumed..].iter().map(|b| b.to_ascii_uppercase()));
                out.push(b'\n');
                consumed = input.len();
            }
            Drained::consumed(consumed)
        }

        fn on_close(&mut self, token: u64) {
            self.closed.push(token);
        }
    }

    fn start(
        config: ReactorConfig,
    ) -> (
        std::net::SocketAddr,
        Arc<AtomicBool>,
        std::thread::JoinHandle<std::io::Result<()>>,
    ) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let t = std::thread::spawn(move || {
            let mut handler = UpcaseLines { closed: Vec::new() };
            run(listener, &mut handler, &flag, &config)
        });
        (addr, shutdown, t)
    }

    fn quick_config() -> ReactorConfig {
        ReactorConfig {
            wait_timeout_ms: 20,
            ..ReactorConfig::default()
        }
    }

    #[test]
    fn echoes_lines_and_coalesces_pipelined_replies() {
        let (addr, shutdown, t) = start(quick_config());
        let mut c = TcpStream::connect(addr).unwrap();
        // Three pipelined requests in one write...
        c.write_all(b"alpha\nbravo\ncharlie\n").unwrap();
        let mut buf = [0u8; 64];
        let mut got = Vec::new();
        while got.len() < 20 {
            let n = c.read(&mut buf).unwrap();
            assert_ne!(n, 0, "server closed early");
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, b"ALPHA\nBRAVO\nCHARLIE\n");
        shutdown.store(true, Ordering::SeqCst);
        t.join().unwrap().unwrap();
    }

    #[test]
    fn partial_lines_wait_for_completion_and_eof_serves_the_tail() {
        let (addr, shutdown, t) = start(quick_config());
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"hel").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(60));
        c.write_all(b"lo\nwor").unwrap();
        // Half-close: the unterminated "wor" must still be answered.
        c.shutdown(std::net::Shutdown::Write).unwrap();
        let mut got = Vec::new();
        c.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"HELLO\nWOR\n");
        shutdown.store(true, Ordering::SeqCst);
        t.join().unwrap().unwrap();
    }

    #[test]
    fn handler_shutdown_stops_the_loop_after_flushing() {
        let (addr, _shutdown, t) = start(quick_config());
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"ping\nSTOP\n").unwrap();
        let mut got = Vec::new();
        c.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"PING\nBYE\n");
        t.join().unwrap().unwrap();
    }

    #[test]
    fn close_action_ends_only_that_connection() {
        let (addr, shutdown, t) = start(quick_config());
        let mut a = TcpStream::connect(addr).unwrap();
        let mut b = TcpStream::connect(addr).unwrap();
        a.write_all(b"CLOSE\n").unwrap();
        let mut got = Vec::new();
        a.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"BYE\n");
        // The sibling connection still works.
        b.write_all(b"still-here\n").unwrap();
        let mut buf = [0u8; 32];
        let n = b.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"STILL-HERE\n");
        shutdown.store(true, Ordering::SeqCst);
        t.join().unwrap().unwrap();
    }

    #[test]
    fn max_connections_parks_the_listener_until_a_slot_frees() {
        let config = ReactorConfig {
            max_connections: 1,
            wait_timeout_ms: 20,
            ..ReactorConfig::default()
        };
        let (addr, shutdown, t) = start(config);
        let mut first = TcpStream::connect(addr).unwrap();
        first.write_all(b"a\n").unwrap();
        let mut buf = [0u8; 8];
        let n = first.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"A\n");

        // Second connection connects (TCP backlog) but is not served.
        let mut second = TcpStream::connect(addr).unwrap();
        second.write_all(b"b\n").unwrap();
        second
            .set_read_timeout(Some(std::time::Duration::from_millis(120)))
            .unwrap();
        assert!(
            second.read(&mut buf).is_err(),
            "second connection served beyond max_connections"
        );

        // Freeing the slot unparks the listener and the queued peer is
        // admitted (its buffered request is then answered).
        drop(first);
        second
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        let n = second.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"B\n");
        shutdown.store(true, Ordering::SeqCst);
        t.join().unwrap().unwrap();
    }

    #[test]
    fn backpressure_pauses_reading_until_the_peer_drains() {
        // Tiny high-water mark: one reply crosses it instantly.
        let config = ReactorConfig {
            high_water: 8,
            wait_timeout_ms: 20,
            ..ReactorConfig::default()
        };
        let (addr, shutdown, t) = start(config);
        let mut c = TcpStream::connect(addr).unwrap();
        // A burst of lines whose replies exceed both the high-water mark
        // and the socket buffer would deadlock a naive loop; the reactor
        // must pause reading, drain as the client reads, and finish.
        let line = vec![b'x'; 4096];
        let mut payload = Vec::new();
        for _ in 0..256 {
            payload.extend_from_slice(&line);
            payload.push(b'\n');
        }
        let expected: Vec<u8> = payload.iter().map(|b| b.to_ascii_uppercase()).collect();
        let writer = std::thread::spawn({
            let mut w = c.try_clone().unwrap();
            let payload = payload.clone();
            move || {
                w.write_all(&payload).unwrap();
                w.shutdown(std::net::Shutdown::Write).unwrap();
            }
        });
        let mut got = Vec::new();
        c.read_to_end(&mut got).unwrap();
        writer.join().unwrap();
        assert_eq!(got.len(), expected.len());
        assert_eq!(got, expected);
        shutdown.store(true, Ordering::SeqCst);
        t.join().unwrap().unwrap();
    }
}
