//! The event loop proper: slab of buffered connections driven by
//! **edge-triggered** epoll readiness, flushed with vectored writes, and
//! woken through an eventfd. All code here is safe; syscalls are behind
//! [`crate::sys`].
//!
//! Edge-triggered discipline: every fd (listener, waker, connections) is
//! registered exactly once with `EPOLLET` and never `epoll_ctl`-modified
//! again. Readiness the kernel reports is remembered in userspace
//! (`accept_pending`, per-conn `read_ready`) and re-driven through a run
//! queue until the fd is drained to `WouldBlock` — so a budget-limited
//! read or a paused (backpressured) connection never loses an edge, and
//! the hot path pays zero `epoll_ctl` syscalls.

use std::collections::VecDeque;
use std::io::{IoSlice, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};

use crate::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLET, EPOLLHUP, EPOLLIN, EPOLLOUT};
use crate::{Action, Handler, Listener, ReactorConfig, Stream, TransportMetrics, Waker};

/// Token of the listening socket (connection tokens encode slot + gen).
const LISTENER_TOKEN: u64 = u64::MAX;

/// Token of the eventfd wakeup channel.
const WAKER_TOKEN: u64 = u64::MAX - 1;

/// Stack read chunk; also the granularity of the per-turn read budget.
const READ_CHUNK: usize = 64 * 1024;

/// Per-turn read budget per connection: after this many fresh bytes the
/// loop re-queues the connection and serves the others first — a single
/// fast writer cannot starve the rest (the leftover readiness is
/// remembered, as edge-triggering requires).
const READ_BUDGET: usize = 4 * READ_CHUNK;

/// Most iovec slices per `writev` call (IOV_MAX is 1024 on Linux; 64
/// already amortizes the syscall completely).
const MAX_IOV: usize = 64;

/// A connection's read buffer is shrunk back to this capacity once the
/// buffered remainder fits in half of it — one giant pipelined request
/// must not pin megabytes per connection for the rest of its life.
const RBUF_RETAIN: usize = READ_CHUNK;

/// Per-connection outgoing data as a queue of owned reply buffers.
///
/// Each event-loop turn's replies are encoded into their own buffer and
/// appended whole; flushing stitches the front `MAX_IOV` buffers into one
/// `writev`. Compared to one coalesced `Vec`, a backlogged connection
/// pays neither the copy of new replies onto the tail nor the
/// `drain(..written)` memmove after partial writes — `head` just advances
/// through the front buffer. Fully-written buffers are recycled.
#[derive(Default)]
struct WriteQueue {
    bufs: VecDeque<Vec<u8>>,
    /// Bytes of `bufs[0]` already written.
    head: usize,
    /// Total unwritten bytes across all buffers.
    len: usize,
    /// Drained buffers kept for reuse.
    spare: Vec<Vec<u8>>,
}

/// Keep at most this many spare buffers, and none above this capacity —
/// one giant reply must not pin its allocation forever.
const SPARE_BUFS: usize = 4;
const SPARE_CAP: usize = 1 << 20;

impl WriteQueue {
    fn take_buf(&mut self) -> Vec<u8> {
        self.spare.pop().unwrap_or_default()
    }

    fn recycle(&mut self, mut buf: Vec<u8>) {
        if self.spare.len() < SPARE_BUFS && buf.capacity() <= SPARE_CAP {
            buf.clear();
            self.spare.push(buf);
        }
    }

    fn push(&mut self, buf: Vec<u8>) {
        if buf.is_empty() {
            self.recycle(buf);
        } else {
            self.len += buf.len();
            self.bufs.push_back(buf);
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Fills `out` (a stack array — `IoSlice` is `Copy`, so no heap
    /// traffic on the flush path) with up to [`MAX_IOV`] slices of
    /// unwritten data; returns how many were written.
    fn fill_slices<'a>(&'a self, out: &mut [IoSlice<'a>; MAX_IOV]) -> usize {
        let mut n = 0;
        for (i, buf) in self.bufs.iter().take(MAX_IOV).enumerate() {
            let slice = if i == 0 { &buf[self.head..] } else { &buf[..] };
            out[i] = IoSlice::new(slice);
            n = i + 1;
        }
        n
    }

    /// Marks `n` bytes written, recycling fully-drained buffers.
    fn advance(&mut self, mut n: usize) {
        debug_assert!(n <= self.len);
        self.len -= n;
        while n > 0 {
            let front_left = self.bufs[0].len() - self.head;
            if n >= front_left {
                n -= front_left;
                let drained = self.bufs.pop_front().expect("nonempty queue");
                self.recycle(drained);
                self.head = 0;
            } else {
                self.head += n;
                n = 0;
            }
        }
    }
}

struct Conn {
    stream: Stream,
    token: u64,
    /// Bytes received but not yet consumed by the handler (at most a
    /// partial request once the handler has run).
    rbuf: Vec<u8>,
    /// Encoded replies not yet written to the socket.
    wq: WriteQueue,
    /// Flush `wq` then close (peer EOF, handler `Close`/`Shutdown`).
    closing: bool,
    /// Peer half-closed its sending side; no more input will arrive.
    eof: bool,
    /// Backpressured: `wq` crossed the high-water mark, reading paused.
    paused: bool,
    /// An unconsumed readable edge: the socket may hold more data.
    read_ready: bool,
    /// Already sitting in the run queue (dedup flag).
    queued: bool,
    /// Last moment bytes moved on this connection (either direction);
    /// the idle sweep reaps connections whose stamp is too old.
    last_activity: std::time::Instant,
}

/// Slot index ↔ token mapping with a generation stamp, so an event queued
/// for a connection that closed earlier in the same batch can never be
/// routed to a newly accepted connection reusing the slot.
fn token_of(slot: usize, generation: u32) -> u64 {
    ((generation as u64) << 32) | slot as u64
}

fn slot_of(token: u64) -> usize {
    (token & 0xFFFF_FFFF) as usize
}

enum ReadStatus {
    /// Connection closed (read error).
    Closed,
    /// Socket drained to `WouldBlock` (or EOF) — edge consumed.
    Drained,
    /// Budget exhausted; the socket may hold more (stays `read_ready`).
    Budget,
}

struct Reactor<'a, H: Handler> {
    epoll: Epoll,
    listener: Listener,
    /// An unconsumed listener edge: the backlog may hold connections.
    accept_pending: bool,
    conns: Vec<Option<Conn>>,
    generations: Vec<u32>,
    free: Vec<usize>,
    live: usize,
    handler: &'a mut H,
    shutdown: &'a AtomicBool,
    config: &'a ReactorConfig,
    waker: &'a Waker,
    metrics: &'a TransportMetrics,
}

pub(crate) fn run<H: Handler>(
    listener: Listener,
    handler: &mut H,
    shutdown: &AtomicBool,
    config: &ReactorConfig,
    waker: &Waker,
    metrics: &TransportMetrics,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    epoll.add(listener.raw_fd(), EPOLLIN | EPOLLET, LISTENER_TOKEN)?;
    epoll.add(waker.eventfd().raw_fd(), EPOLLIN | EPOLLET, WAKER_TOKEN)?;
    let mut r = Reactor {
        epoll,
        listener,
        // Catch connections that raced in before registration.
        accept_pending: true,
        conns: Vec::new(),
        generations: Vec::new(),
        free: Vec::new(),
        live: 0,
        handler,
        shutdown,
        config,
        waker,
        metrics,
    };
    let mut events = vec![EpollEvent::default(); 256];
    let mut chunk = vec![0u8; READ_CHUNK];
    // Run queue of connection tokens with work left this turn; `next`
    // collects re-queues (budget leftovers) for the following turn.
    let mut queue: Vec<u64> = Vec::new();
    let mut next: Vec<u64> = Vec::new();
    // With an idle deadline the wait must stay bounded so dead-quiet
    // connections are still reaped; sweeping at a quarter of the
    // deadline keeps the overshoot small without waking up constantly.
    let sweep_every = config
        .idle_timeout
        .map(|d| (d / 4).max(std::time::Duration::from_millis(10)));
    let mut last_sweep = std::time::Instant::now();
    loop {
        // Block forever unless userspace still holds unconsumed
        // readiness (or an idle sweep is due); shutdown arrives as an
        // eventfd wakeup, never as a timeout.
        // (in shedding mode a full house still consumes the backlog, so
        // the parked-listener pause only applies when parking).
        let can_accept = r.accept_pending
            && (r.live < r.config.max_connections || r.config.shed_reply.is_some());
        let timeout = if can_accept || !queue.is_empty() {
            0
        } else if let Some(every) = sweep_every {
            every.as_millis().min(i32::MAX as u128) as i32
        } else {
            -1
        };
        let n = r.epoll.wait(&mut events, timeout)?;
        for ev in events.iter().copied().take(n) {
            match ev.data {
                LISTENER_TOKEN => r.accept_pending = true,
                WAKER_TOKEN => {
                    r.waker.eventfd().drain();
                    r.metrics.on_wakeup();
                }
                _ => r.conn_event(ev, &mut queue),
            }
        }
        if r.shutdown.load(Ordering::SeqCst) {
            r.final_flush();
            return Ok(());
        }
        if let (Some(limit), Some(every)) = (config.idle_timeout, sweep_every) {
            if last_sweep.elapsed() >= every {
                r.reap_idle(limit);
                last_sweep = std::time::Instant::now();
            }
        }
        if r.accept_pending {
            r.accept_ready(&mut queue);
        }
        for token in queue.drain(..) {
            r.drive(token, &mut chunk, &mut next);
            if r.shutdown.load(Ordering::SeqCst) {
                // A handler requested shutdown; its farewell reply was
                // already flushed by `drive`, and the waker has nudged
                // sibling loops.
                r.final_flush();
                return Ok(());
            }
        }
        std::mem::swap(&mut queue, &mut next);
    }
}

impl<H: Handler> Reactor<'_, H> {
    fn accept_ready(&mut self, queue: &mut Vec<u64>) {
        loop {
            let at_capacity = self.live >= self.config.max_connections;
            if at_capacity && self.config.shed_reply.is_none() {
                // Leave `accept_pending` set: the backlog keeps the
                // overflow, and a freed slot re-enters here without
                // needing a fresh kernel edge.
                return;
            }
            let stream = match self.listener.accept() {
                Ok(stream) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.accept_pending = false;
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // The pending peer reset before accept (ECONNABORTED &
                // co.): that connection was dequeued, but siblings from
                // the same coalesced edge may still sit in the backlog —
                // keep draining to WouldBlock, as edge-triggering
                // requires.
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => continue,
                // Non-dequeuing accept error (e.g. EMFILE): nothing was
                // consumed, so retrying now would spin. Park the edge;
                // the next arrival re-fires it.
                Err(_) => {
                    self.accept_pending = false;
                    return;
                }
            };
            // Failpoint `transport::accept`: the freshly accepted socket
            // is dropped as if setup had failed — the peer sees a reset.
            if shbf_failpoint::fail("transport::accept").is_some() {
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            stream.set_nodelay(true).ok();
            if at_capacity {
                // Overload shedding: tell the peer we are busy (best
                // effort — the socket is fresh, so the tiny reply almost
                // always fits the send buffer) and hang up. The client
                // gets an immediate, parseable error instead of an
                // unexplained queueing delay.
                let mut stream = stream;
                if let Some(reply) = &self.config.shed_reply {
                    let _ = stream.write(reply);
                }
                self.metrics.on_shed();
                continue;
            }
            let slot = self.free.pop().unwrap_or_else(|| {
                self.conns.push(None);
                self.generations.push(0);
                self.conns.len() - 1
            });
            let token = token_of(slot, self.generations[slot]);
            if self
                .epoll
                .add(stream.raw_fd(), EPOLLIN | EPOLLOUT | EPOLLET, token)
                .is_err()
            {
                self.free.push(slot);
                continue;
            }
            self.conns[slot] = Some(Conn {
                stream,
                token,
                rbuf: Vec::new(),
                wq: WriteQueue::default(),
                closing: false,
                eof: false,
                paused: false,
                // Data may have raced in before registration; one drive
                // pass settles it (reads to WouldBlock if not).
                read_ready: true,
                queued: true,
                last_activity: std::time::Instant::now(),
            });
            self.live += 1;
            self.metrics.on_accept();
            queue.push(token);
        }
    }

    fn conn_event(&mut self, ev: EpollEvent, queue: &mut Vec<u64>) {
        let slot = slot_of(ev.data);
        // Stale event for a connection closed earlier in this batch (or a
        // reused slot with a newer generation): ignore.
        match self.conns.get(slot) {
            Some(Some(conn)) if conn.token == ev.data => {}
            _ => return,
        }
        if ev.events & (EPOLLERR | EPOLLHUP) != 0 {
            self.close(slot);
            return;
        }
        let conn = self.conns[slot].as_mut().expect("checked live");
        if ev.events & EPOLLIN != 0 {
            conn.read_ready = true;
        }
        // Readable and writable edges both funnel into one drive pass
        // (read → handle → flush → bookkeeping).
        if !conn.queued {
            conn.queued = true;
            queue.push(ev.data);
        }
    }

    /// One full service pass over a connection: read (unless paused),
    /// run the handler, flush, recompute backpressure/close state, and
    /// re-queue if budget-limited reading left data behind.
    fn drive(&mut self, token: u64, chunk: &mut [u8], next: &mut Vec<u64>) {
        let slot = slot_of(token);
        match self.conns.get_mut(slot) {
            Some(Some(conn)) if conn.token == token => conn.queued = false,
            _ => return, // closed earlier this turn
        }
        let conn = self.conns[slot].as_mut().expect("checked live");
        if conn.read_ready && !conn.paused && !conn.closing && !conn.eof {
            if let ReadStatus::Closed = self.fill_read_buffer(slot, chunk) {
                return;
            }
        }
        if !self.drive_handler(slot) {
            return;
        }
        if !self.try_flush(slot) {
            return;
        }
        if !self.after_io(slot) {
            return;
        }
        let conn = self.conns[slot].as_mut().expect("checked live");
        if conn.read_ready && !conn.paused && !conn.closing && !conn.eof && !conn.queued {
            conn.queued = true;
            next.push(token);
        }
    }

    /// Reads until `WouldBlock`, EOF, or the per-turn budget.
    fn fill_read_buffer(&mut self, slot: usize, chunk: &mut [u8]) -> ReadStatus {
        // Failpoint `transport::read`: the socket read fails mid-stream;
        // the connection is torn down like any other read error.
        if shbf_failpoint::fail("transport::read").is_some() {
            self.close(slot);
            return ReadStatus::Closed;
        }
        let conn = self.conns[slot].as_mut().expect("checked live");
        let mut fresh = 0usize;
        let status = loop {
            if fresh >= READ_BUDGET {
                break ReadStatus::Budget; // stays read_ready; re-queued
            }
            match conn.stream.read(chunk) {
                Ok(0) => {
                    conn.eof = true;
                    conn.read_ready = false;
                    break ReadStatus::Drained;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    fresh += n;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    conn.read_ready = false;
                    break ReadStatus::Drained;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.metrics.add_bytes_in(fresh as u64);
                    self.close(slot);
                    return ReadStatus::Closed;
                }
            }
        };
        if fresh > 0 {
            conn.last_activity = std::time::Instant::now();
        }
        self.metrics.add_bytes_in(fresh as u64);
        status
    }

    /// Hands the buffered bytes to the handler and applies its verdict.
    /// Returns false if the connection was closed.
    fn drive_handler(&mut self, slot: usize) -> bool {
        let conn = self.conns[slot].as_mut().expect("checked live");
        if conn.closing || (conn.rbuf.is_empty() && !conn.eof) {
            return true;
        }
        // This turn's replies get their own buffer (recycled from the
        // queue) — queued turns are stitched together by writev, never
        // copied into one another.
        let mut out = conn.wq.take_buf();
        let drained = self
            .handler
            .on_data(conn.token, &conn.rbuf, conn.eof, &mut out);
        conn.wq.push(out);
        let consumed = drained.consumed.min(conn.rbuf.len());
        conn.rbuf.drain(..consumed);
        // A burst of giant pipelined requests grows `rbuf` far past the
        // steady state; once the leftover fits comfortably, give the
        // memory back instead of pinning the high-water mark forever.
        if conn.rbuf.capacity() > RBUF_RETAIN && conn.rbuf.len() <= RBUF_RETAIN / 2 {
            conn.rbuf.shrink_to(RBUF_RETAIN);
        }
        match drained.action {
            Action::Continue => {
                if conn.eof {
                    // The final (possibly unterminated) input was just
                    // handled; whatever remains can never complete.
                    conn.closing = true;
                }
            }
            Action::Close => conn.closing = true,
            Action::Shutdown => {
                conn.closing = true;
                self.shutdown.store(true, Ordering::SeqCst);
                // Nudge sibling loops sharing this waker; they observe
                // the flag on their next (immediate) wakeup.
                self.waker.wake().ok();
            }
        }
        true
    }

    /// Writes as much of the queue as the socket accepts right now, one
    /// `writev` over up to [`MAX_IOV`] reply buffers per syscall; partial
    /// writes re-slice and continue. Returns false if the connection was
    /// closed.
    fn try_flush(&mut self, slot: usize) -> bool {
        // Failpoint `transport::writev`: the vectored write fails with
        // replies pending; the connection is torn down like any other
        // write error. Only fires with something to flush, so an armed
        // site does not sweep away idle connections.
        if !self.conns[slot]
            .as_ref()
            .expect("checked live")
            .wq
            .is_empty()
            && shbf_failpoint::fail("transport::writev").is_some()
        {
            self.close(slot);
            return false;
        }
        let conn = self.conns[slot].as_mut().expect("checked live");
        let (stream, wq) = (&mut conn.stream, &mut conn.wq);
        let mut written = 0usize;
        let result = loop {
            if wq.is_empty() {
                break true;
            }
            let mut iov = [IoSlice::new(&[]); MAX_IOV];
            let filled = wq.fill_slices(&mut iov);
            let outcome = stream.write_vectored(&iov[..filled]);
            match outcome {
                Ok(0) => break false,
                Ok(n) => {
                    wq.advance(n);
                    written += n;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break false,
            }
        };
        if written > 0 {
            conn.last_activity = std::time::Instant::now();
        }
        self.metrics.add_bytes_out(written as u64);
        if !result {
            self.close(slot);
        }
        result
    }

    /// Recomputes backpressure state; closes the connection when it is
    /// `closing` (or at EOF) with nothing left to write. Returns false if
    /// it closed.
    fn after_io(&mut self, slot: usize) -> bool {
        let high = self.config.high_water.max(1);
        let conn = self.conns[slot].as_mut().expect("checked live");
        if conn.wq.is_empty() && (conn.closing || conn.eof) {
            self.close(slot);
            return false;
        }
        let depth = conn.wq.len();
        self.metrics.observe_queue_depth(depth as u64);
        if !conn.paused && depth > high {
            conn.paused = true;
            self.metrics.on_backpressure_enter();
        } else if conn.paused && depth < high / 2 + 1 {
            conn.paused = false;
            self.metrics.on_backpressure_exit();
        }
        true
    }

    /// Closes every connection whose `last_activity` stamp is older than
    /// `limit`. Connections already draining toward close are left to
    /// finish normally.
    fn reap_idle(&mut self, limit: std::time::Duration) {
        let now = std::time::Instant::now();
        for slot in 0..self.conns.len() {
            let idle = match &self.conns[slot] {
                Some(conn) => !conn.closing && now.duration_since(conn.last_activity) >= limit,
                None => false,
            };
            if idle {
                self.metrics.on_idle_reap();
                self.close(slot);
            }
        }
    }

    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            self.epoll.delete(conn.stream.raw_fd()).ok();
            self.handler.on_close(conn.token);
            self.metrics.on_close();
            self.generations[slot] = self.generations[slot].wrapping_add(1);
            self.free.push(slot);
            self.live -= 1;
        }
    }

    /// Best-effort last flush of every live connection's queued replies
    /// before the loop returns on shutdown (nonblocking — a peer that
    /// stopped reading forfeits its tail).
    fn final_flush(&mut self) {
        for slot in 0..self.conns.len() {
            if self.conns[slot].is_some() {
                self.try_flush(slot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Drained;
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    /// Upper-cases complete LF-terminated lines; `STOP` shuts down.
    struct UpcaseLines {
        closed: Vec<u64>,
    }

    impl Handler for UpcaseLines {
        fn on_data(&mut self, _token: u64, input: &[u8], eof: bool, out: &mut Vec<u8>) -> Drained {
            let mut consumed = 0;
            while let Some(nl) = input[consumed..].iter().position(|&b| b == b'\n') {
                let line = &input[consumed..consumed + nl];
                consumed += nl + 1;
                if line == b"STOP" {
                    out.extend_from_slice(b"BYE\n");
                    return Drained {
                        consumed,
                        action: Action::Shutdown,
                    };
                }
                if line == b"CLOSE" {
                    out.extend_from_slice(b"BYE\n");
                    return Drained {
                        consumed,
                        action: Action::Close,
                    };
                }
                out.extend(line.iter().map(|b| b.to_ascii_uppercase()));
                out.push(b'\n');
            }
            if eof && consumed < input.len() {
                // Trailing unterminated line: serve it, like read_line.
                out.extend(input[consumed..].iter().map(|b| b.to_ascii_uppercase()));
                out.push(b'\n');
                consumed = input.len();
            }
            Drained::consumed(consumed)
        }

        fn on_close(&mut self, token: u64) {
            self.closed.push(token);
        }
    }

    struct Running {
        shutdown: Arc<AtomicBool>,
        waker: Waker,
        metrics: Arc<TransportMetrics>,
        thread: std::thread::JoinHandle<std::io::Result<()>>,
    }

    impl Running {
        fn stop(self) {
            self.shutdown.store(true, Ordering::SeqCst);
            self.waker.wake().unwrap();
            self.thread.join().unwrap().unwrap();
        }
    }

    fn start_on(listener: Listener, config: ReactorConfig) -> Running {
        let shutdown = Arc::new(AtomicBool::new(false));
        let waker = Waker::new().unwrap();
        let metrics = Arc::new(TransportMetrics::new());
        let thread = std::thread::spawn({
            let shutdown = Arc::clone(&shutdown);
            let waker = waker.clone();
            let metrics = Arc::clone(&metrics);
            move || {
                let mut handler = UpcaseLines { closed: Vec::new() };
                run(listener, &mut handler, &shutdown, &config, &waker, &metrics)
            }
        });
        Running {
            shutdown,
            waker,
            metrics,
            thread,
        }
    }

    fn start(config: ReactorConfig) -> (std::net::SocketAddr, Running) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        (addr, start_on(listener.into(), config))
    }

    #[test]
    fn echoes_lines_and_pipelines_replies() {
        let (addr, running) = start(ReactorConfig::default());
        let mut c = TcpStream::connect(addr).unwrap();
        // Three pipelined requests in one write...
        c.write_all(b"alpha\nbravo\ncharlie\n").unwrap();
        let mut buf = [0u8; 64];
        let mut got = Vec::new();
        while got.len() < 20 {
            let n = c.read(&mut buf).unwrap();
            assert_ne!(n, 0, "server closed early");
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, b"ALPHA\nBRAVO\nCHARLIE\n");
        running.stop();
    }

    #[test]
    fn partial_lines_wait_for_completion_and_eof_serves_the_tail() {
        let (addr, running) = start(ReactorConfig::default());
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"hel").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(60));
        c.write_all(b"lo\nwor").unwrap();
        // Half-close: the unterminated "wor" must still be answered.
        c.shutdown(std::net::Shutdown::Write).unwrap();
        let mut got = Vec::new();
        c.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"HELLO\nWOR\n");
        running.stop();
    }

    #[test]
    fn handler_shutdown_stops_the_loop_after_flushing() {
        let (addr, running) = start(ReactorConfig::default());
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"ping\nSTOP\n").unwrap();
        let mut got = Vec::new();
        c.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"PING\nBYE\n");
        running.thread.join().unwrap().unwrap();
    }

    #[test]
    fn close_action_ends_only_that_connection() {
        let (addr, running) = start(ReactorConfig::default());
        let mut a = TcpStream::connect(addr).unwrap();
        let mut b = TcpStream::connect(addr).unwrap();
        a.write_all(b"CLOSE\n").unwrap();
        let mut got = Vec::new();
        a.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"BYE\n");
        // The sibling connection still works.
        b.write_all(b"still-here\n").unwrap();
        let mut buf = [0u8; 32];
        let n = b.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"STILL-HERE\n");
        running.stop();
    }

    #[test]
    fn unix_socket_transport_speaks_the_same_protocol() {
        use std::os::unix::net::{UnixListener, UnixStream};
        let path = std::env::temp_dir().join(format!(
            "shbf-reactor-test-{}-{:?}.sock",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).unwrap();
        let running = start_on(listener.into(), ReactorConfig::default());
        let mut c = UnixStream::connect(&path).unwrap();
        c.write_all(b"over\nunix\n").unwrap();
        c.shutdown(std::net::Shutdown::Write).unwrap();
        let mut got = Vec::new();
        c.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"OVER\nUNIX\n");
        running.stop();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn waker_shutdown_is_prompt_even_with_idle_connections() {
        let (addr, running) = start(ReactorConfig::default());
        // An idle connection parks the loop in a timeout-less epoll_wait;
        // without the eventfd wakeup this join would hang forever.
        let _idle = TcpStream::connect(addr).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        let started = std::time::Instant::now();
        running.stop();
        assert!(
            started.elapsed() < std::time::Duration::from_secs(1),
            "shutdown stalled {:?} — waker not waking the loop",
            started.elapsed()
        );
    }

    #[test]
    fn metrics_track_connections_and_bytes() {
        let (addr, running) = start(ReactorConfig::default());
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"count-me\n").unwrap();
        let mut buf = [0u8; 16];
        let n = c.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"COUNT-ME\n");
        drop(c);
        // Close is observed asynchronously; poll briefly.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        loop {
            let s = running.metrics.snapshot();
            if s.closed >= 1 || std::time::Instant::now() > deadline {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let s = running.metrics.snapshot();
        assert_eq!(s.accepted, 1);
        assert_eq!(s.closed, 1);
        assert_eq!(s.bytes_in, 9);
        assert_eq!(s.bytes_out, 9);
        running.stop();
    }

    #[test]
    fn max_connections_leaves_overflow_in_the_backlog_until_a_slot_frees() {
        let config = ReactorConfig {
            max_connections: 1,
            ..ReactorConfig::default()
        };
        let (addr, running) = start(config);
        let mut first = TcpStream::connect(addr).unwrap();
        first.write_all(b"a\n").unwrap();
        let mut buf = [0u8; 8];
        let n = first.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"A\n");

        // Second connection connects (TCP backlog) but is not served.
        let mut second = TcpStream::connect(addr).unwrap();
        second.write_all(b"b\n").unwrap();
        second
            .set_read_timeout(Some(std::time::Duration::from_millis(120)))
            .unwrap();
        assert!(
            second.read(&mut buf).is_err(),
            "second connection served beyond max_connections"
        );

        // Freeing the slot admits the queued peer (its buffered request
        // is then answered).
        drop(first);
        second
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        let n = second.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"B\n");
        running.stop();
    }

    #[test]
    fn shed_reply_turns_overflow_into_an_immediate_busy_error() {
        let config = ReactorConfig {
            max_connections: 1,
            shed_reply: Some(Arc::from(&b"-ERR busy\r\n"[..])),
            ..ReactorConfig::default()
        };
        let (addr, running) = start(config);
        let mut first = TcpStream::connect(addr).unwrap();
        first.write_all(b"a\n").unwrap();
        let mut buf = [0u8; 16];
        let n = first.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"A\n");

        // Overflow is accepted, told off, and hung up on — not parked.
        let mut second = TcpStream::connect(addr).unwrap();
        second
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        let mut got = Vec::new();
        second.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"-ERR busy\r\n");
        assert_eq!(running.metrics.snapshot().shed, 1);

        // Freeing the slot restores normal service for new arrivals.
        drop(first);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let mut third = TcpStream::connect(addr).unwrap();
            third.write_all(b"c\n").unwrap();
            third
                .set_read_timeout(Some(std::time::Duration::from_millis(200)))
                .unwrap();
            // A shed race (the old slot not yet reclaimed) reads the busy
            // error to EOF; a served connection answers and stays open.
            match third.read(&mut buf) {
                Ok(n) if &buf[..n] == b"C\n" => break,
                _ if std::time::Instant::now() > deadline => {
                    panic!("slot never freed for new connections")
                }
                _ => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        }
        running.stop();
    }

    #[test]
    fn idle_connections_are_reaped_after_the_deadline() {
        let config = ReactorConfig {
            idle_timeout: Some(std::time::Duration::from_millis(150)),
            ..ReactorConfig::default()
        };
        let (addr, running) = start(config);
        let mut idle = TcpStream::connect(addr).unwrap();
        idle.set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();
        let started = std::time::Instant::now();
        // The server, not the client, must end this connection.
        let mut buf = [0u8; 8];
        let n = idle.read(&mut buf).unwrap();
        assert_eq!(n, 0, "expected server-side close, got data");
        assert!(
            started.elapsed() >= std::time::Duration::from_millis(100),
            "reaped suspiciously fast ({:?})",
            started.elapsed()
        );
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while running.metrics.snapshot().idle_reaped == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(running.metrics.snapshot().idle_reaped, 1);

        // A connection that keeps talking survives well past the limit.
        let mut chatty = TcpStream::connect(addr).unwrap();
        for _ in 0..4 {
            std::thread::sleep(std::time::Duration::from_millis(60));
            chatty.write_all(b"hi\n").unwrap();
            let n = chatty.read(&mut buf).unwrap();
            assert_eq!(&buf[..n], b"HI\n", "active connection was reaped");
        }
        running.stop();
    }

    #[test]
    fn giant_requests_are_served_and_do_not_wedge_the_buffer() {
        // One request far beyond RBUF_RETAIN, then small ones: the shrink
        // path runs in between and must not disturb correctness.
        let (addr, running) = start(ReactorConfig::default());
        let mut c = TcpStream::connect(addr).unwrap();
        let big = vec![b'y'; 4 * RBUF_RETAIN];
        let mut req = big.clone();
        req.push(b'\n');
        let writer = std::thread::spawn({
            let mut w = c.try_clone().unwrap();
            move || w.write_all(&req)
        });
        let mut got = vec![0u8; big.len() + 1];
        c.read_exact(&mut got).unwrap();
        writer.join().unwrap().unwrap();
        assert!(got[..big.len()].iter().all(|&b| b == b'Y'));
        assert_eq!(got[big.len()], b'\n');
        for _ in 0..3 {
            c.write_all(b"tiny\n").unwrap();
            let mut buf = [0u8; 8];
            let n = c.read(&mut buf).unwrap();
            assert_eq!(&buf[..n], b"TINY\n");
        }
        running.stop();
    }

    #[test]
    fn backpressure_pauses_reading_until_the_peer_drains() {
        // Tiny high-water mark: one reply crosses it instantly.
        let config = ReactorConfig {
            high_water: 8,
            ..ReactorConfig::default()
        };
        let (addr, running) = start(config);
        let mut c = TcpStream::connect(addr).unwrap();
        // A burst of lines whose replies exceed both the high-water mark
        // and the socket buffer would deadlock a naive loop; the reactor
        // must pause reading, drain as the client reads, and finish —
        // with the writev path preserving order across queued buffers.
        let line = vec![b'x'; 4096];
        let mut payload = Vec::new();
        for _ in 0..4096 {
            payload.extend_from_slice(&line);
            payload.push(b'\n');
        }
        let expected: Vec<u8> = payload.iter().map(|b| b.to_ascii_uppercase()).collect();
        let writer = std::thread::spawn({
            let mut w = c.try_clone().unwrap();
            let payload = payload.clone();
            move || {
                w.write_all(&payload).unwrap();
                w.shutdown(std::net::Shutdown::Write).unwrap();
            }
        });
        // Deliberately slow reader: give the server time to fill the
        // socket buffer and trip the high-water mark before draining.
        std::thread::sleep(std::time::Duration::from_millis(200));
        let mut got = Vec::new();
        c.read_to_end(&mut got).unwrap();
        writer.join().unwrap();
        assert_eq!(got.len(), expected.len());
        assert_eq!(got, expected);
        let s = running.metrics.snapshot();
        assert!(s.backpressure_enter >= 1, "pause never recorded: {s:?}");
        assert!(s.backpressure_exit >= 1, "resume never recorded: {s:?}");
        assert!(s.queue_high_water > 8, "high water not observed: {s:?}");
        running.stop();
    }

    #[test]
    fn write_queue_advances_across_buffer_boundaries() {
        let mut q = WriteQueue::default();
        q.push(b"hello ".to_vec());
        q.push(b"world".to_vec());
        q.push(b"!".to_vec());
        assert_eq!(q.len(), 12);
        let mut iov = [IoSlice::new(&[]); MAX_IOV];
        assert_eq!(q.fill_slices(&mut iov), 3);
        // Partial write ending mid-second-buffer.
        q.advance(8);
        assert_eq!(q.len(), 4);
        let mut iov = [IoSlice::new(&[]); MAX_IOV];
        let filled = q.fill_slices(&mut iov);
        let flat: Vec<u8> = iov[..filled]
            .iter()
            .flat_map(|s| s.iter().copied())
            .collect();
        assert_eq!(flat, b"rld!");
        q.advance(4);
        assert!(q.is_empty());
        // Drained buffers were recycled.
        assert!(!q.spare.is_empty());
        let reused = q.take_buf();
        assert!(reused.is_empty() && reused.capacity() > 0);
    }
}
