//! Serialization integration tests: every persistable structure roundtrips
//! byte-exactly in behaviour, kind tags are enforced, and corruption at any
//! byte is rejected.

use shbf::baselines::{Bf, Cbf, CmSketch, CuckooFilter, OneMemBf, SpectralBf};
use shbf::core::{GenShbfM, ScmSketch, ShbfA, ShbfM, ShbfX};
use shbf::workloads::sets::{distinct_flows, AssociationPair};

fn keys(n: usize, seed: u64) -> Vec<[u8; 13]> {
    distinct_flows(n, seed)
        .iter()
        .map(|f| f.to_bytes())
        .collect()
}

/// Builds one serialized blob per structure kind, loaded with behaviour
/// probes.
fn all_blobs() -> Vec<(&'static str, Vec<u8>)> {
    let members = keys(800, 1);
    let mut out = Vec::new();

    let mut f = ShbfM::new(12_000, 8, 42).unwrap();
    members.iter().for_each(|k| f.insert(k));
    out.push(("ShbfM", f.to_bytes()));

    let mut f = GenShbfM::new(12_000, 12, 2, 42).unwrap();
    members.iter().for_each(|k| f.insert(k));
    out.push(("GenShbfM", f.to_bytes()));

    let pair = AssociationPair::generate(500, 500, 125, 2);
    let f = ShbfA::builder()
        .hashes(8)
        .seed(42)
        .build(&pair.s1_bytes(), &pair.s2_bytes())
        .unwrap();
    out.push(("ShbfA", f.to_bytes()));

    let counted: Vec<([u8; 13], u64)> = members
        .iter()
        .enumerate()
        .map(|(i, k)| (*k, (i as u64 % 20) + 1))
        .collect();
    let f = ShbfX::build(&counted, 24_000, 8, 20, 42).unwrap();
    out.push(("ShbfX", f.to_bytes()));

    let mut f = ScmSketch::new(8, 1024, 42).unwrap();
    members.iter().for_each(|k| f.insert(k));
    out.push(("ScmSketch", f.to_bytes()));

    let mut f = Bf::new(12_000, 8, 42).unwrap();
    members.iter().for_each(|k| f.insert(k));
    out.push(("Bf", f.to_bytes()));

    let mut f = Cbf::new(12_000, 8, 42).unwrap();
    members.iter().for_each(|k| f.insert(k));
    out.push(("Cbf", f.to_bytes()));

    let mut f = OneMemBf::new(12_000, 8, 42).unwrap();
    members.iter().for_each(|k| f.insert(k));
    out.push(("OneMemBf", f.to_bytes()));

    let mut f = SpectralBf::new(12_000, 8, 42).unwrap();
    members.iter().for_each(|k| f.insert(k));
    out.push(("SpectralBf", f.to_bytes()));

    let mut f = CmSketch::new(8, 1024, 42).unwrap();
    members.iter().for_each(|k| f.insert(k));
    out.push(("CmSketch", f.to_bytes()));

    let mut f = CuckooFilter::new(2000, 12, 42).unwrap();
    members.iter().for_each(|k| f.try_insert(k).unwrap());
    out.push(("CuckooFilter", f.to_bytes()));

    out
}

#[test]
fn every_structure_roundtrips_with_identical_answers() {
    let members = keys(800, 1);
    let probes = keys(3000, 99);

    // Decode each blob with its own type and compare answers on a probe set.
    macro_rules! check_membership {
        ($ty:ty, $blob:expr, $build:expr) => {{
            let restored = <$ty>::from_bytes($blob).expect("roundtrip failed");
            let original = $build;
            for p in members.iter().chain(probes.iter()) {
                assert_eq!(
                    original.contains(p),
                    restored.contains(p),
                    concat!(stringify!($ty), " answer changed after roundtrip")
                );
            }
        }};
    }

    let blobs = all_blobs();
    let get = |name: &str| -> &[u8] { &blobs.iter().find(|(n, _)| *n == name).unwrap().1 };

    check_membership!(ShbfM, get("ShbfM"), {
        let mut f = ShbfM::new(12_000, 8, 42).unwrap();
        members.iter().for_each(|k| f.insert(k));
        f
    });
    check_membership!(Bf, get("Bf"), {
        let mut f = Bf::new(12_000, 8, 42).unwrap();
        members.iter().for_each(|k| f.insert(k));
        f
    });
    check_membership!(OneMemBf, get("OneMemBf"), {
        let mut f = OneMemBf::new(12_000, 8, 42).unwrap();
        members.iter().for_each(|k| f.insert(k));
        f
    });
    check_membership!(GenShbfM, get("GenShbfM"), {
        let mut f = GenShbfM::new(12_000, 12, 2, 42).unwrap();
        members.iter().for_each(|k| f.insert(k));
        f
    });

    // Count estimators.
    let restored = ShbfX::from_bytes(get("ShbfX")).unwrap();
    for (i, key) in members.iter().enumerate() {
        assert!(restored.query(key).reported > (i as u64 % 20));
    }
    let restored = SpectralBf::from_bytes(get("SpectralBf")).unwrap();
    for key in &members {
        assert!(restored.estimate(key) >= 1);
    }
    let restored = CmSketch::from_bytes(get("CmSketch")).unwrap();
    for key in &members {
        assert!(restored.estimate(key) >= 1);
    }
    let restored = ScmSketch::from_bytes(get("ScmSketch")).unwrap();
    for key in &members {
        assert!(restored.estimate(key) >= 1);
    }

    // Association answers.
    let pair = AssociationPair::generate(500, 500, 125, 2);
    let original = ShbfA::builder()
        .hashes(8)
        .seed(42)
        .build(&pair.s1_bytes(), &pair.s2_bytes())
        .unwrap();
    let restored = ShbfA::from_bytes(get("ShbfA")).unwrap();
    for f in pair
        .s1_only
        .iter()
        .chain(pair.both.iter())
        .chain(pair.s2_only.iter())
    {
        assert_eq!(original.query(&f.to_bytes()), restored.query(&f.to_bytes()));
    }

    // Cuckoo.
    let restored = CuckooFilter::from_bytes(get("CuckooFilter")).unwrap();
    for key in &members {
        assert!(restored.contains(key));
    }
    // CBF.
    let restored = Cbf::from_bytes(get("Cbf")).unwrap();
    for key in &members {
        assert!(restored.contains(key));
    }
}

#[test]
fn kind_tags_prevent_cross_decoding() {
    let mut bf = Bf::new(1000, 4, 1).unwrap();
    bf.insert(b"x");
    let blob = bf.to_bytes();
    assert!(
        ShbfM::from_bytes(&blob).is_err(),
        "ShbfM accepted a BF blob"
    );
    assert!(
        ShbfX::from_bytes(&blob).is_err(),
        "ShbfX accepted a BF blob"
    );
    assert!(CuckooFilter::from_bytes(&blob).is_err());
}

#[test]
fn single_byte_corruption_is_always_detected() {
    for (name, blob) in all_blobs() {
        // Flip one byte at a sample of positions (every 97th byte keeps
        // runtime sane for large blobs) — decode must fail every time.
        for i in (0..blob.len()).step_by(97) {
            let mut bad = blob.clone();
            bad[i] ^= 0x20;
            let rejected = match name {
                "ShbfM" => ShbfM::from_bytes(&bad).is_err(),
                "GenShbfM" => GenShbfM::from_bytes(&bad).is_err(),
                "ShbfA" => ShbfA::from_bytes(&bad).is_err(),
                "ShbfX" => ShbfX::from_bytes(&bad).is_err(),
                "ScmSketch" => ScmSketch::from_bytes(&bad).is_err(),
                "Bf" => Bf::from_bytes(&bad).is_err(),
                "Cbf" => Cbf::from_bytes(&bad).is_err(),
                "OneMemBf" => OneMemBf::from_bytes(&bad).is_err(),
                "SpectralBf" => SpectralBf::from_bytes(&bad).is_err(),
                "CmSketch" => CmSketch::from_bytes(&bad).is_err(),
                "CuckooFilter" => CuckooFilter::from_bytes(&bad).is_err(),
                _ => unreachable!(),
            };
            assert!(rejected, "{name}: corruption at byte {i} went undetected");
        }
    }
}
