//! Cross-structure invariants, driven through the shared traits so every
//! membership filter and every count estimator faces the same checks.

use shbf::baselines::{Bf, Cbf, CmSketch, CuckooFilter, Dcf, KmBf, OneMemBf, SpectralBf};
use shbf::core::traits::{CountEstimator, MembershipFilter};
use shbf::core::{CShbfM, GenShbfM, ScmSketch, ShbfM, ShbfX};
use shbf::workloads::queries::negatives_for;
use shbf::workloads::sets::distinct_flows;

fn membership_zoo(m: usize, k: usize, n: usize, seed: u64) -> Vec<Box<dyn MembershipFilter>> {
    vec![
        Box::new(ShbfM::new(m, k, seed).unwrap()),
        Box::new(GenShbfM::new(m, 12, 2, seed).unwrap()),
        Box::new(CShbfM::new(m, k, seed).unwrap()),
        Box::new(Bf::new(m, k, seed).unwrap()),
        Box::new(Cbf::new(m, k, seed).unwrap()),
        Box::new(KmBf::new(m, k, seed).unwrap()),
        Box::new(OneMemBf::new(m, k, seed).unwrap()),
        Box::new(CuckooFilter::new(n * 2, 12, seed).unwrap()),
    ]
}

#[test]
fn no_membership_filter_has_false_negatives() {
    let n = 3000usize;
    let flows = distinct_flows(n, 7);
    for filter in membership_zoo(60_000, 8, n, 7).iter_mut() {
        for f in &flows {
            filter.insert(&f.to_bytes());
        }
        for f in &flows {
            assert!(
                filter.contains(&f.to_bytes()),
                "{} returned a false negative",
                filter.kind_name()
            );
        }
    }
}

#[test]
fn all_membership_filters_have_bounded_fpr() {
    // Sized at 20 bits/element, every structure should stay under 1% FPR
    // (1MemBF is the worst of the zoo but still passes at this budget).
    let n = 3000usize;
    let flows = distinct_flows(n, 9);
    let probes = negatives_for(&flows, 100_000, 0xAA);
    for filter in membership_zoo(n * 20, 8, n, 9).iter_mut() {
        for f in &flows {
            filter.insert(&f.to_bytes());
        }
        let fp = probes
            .iter()
            .filter(|p| filter.contains(&p.to_bytes()))
            .count();
        let fpr = fp as f64 / probes.len() as f64;
        assert!(fpr < 0.01, "{}: FPR {fpr:.5}", filter.kind_name());
    }
}

#[test]
fn profiled_and_plain_queries_agree() {
    let n = 1000usize;
    let flows = distinct_flows(n, 11);
    let probes = negatives_for(&flows, 5000, 0xBB);
    for filter in membership_zoo(20_000, 8, n, 11).iter_mut() {
        for f in &flows {
            filter.insert(&f.to_bytes());
        }
        let mut stats = shbf::bits::AccessStats::new();
        for f in flows.iter().take(500) {
            let key = f.to_bytes();
            assert_eq!(
                filter.contains(&key),
                filter.contains_profiled(&key, &mut stats),
                "{} disagrees with its profiled path",
                filter.kind_name()
            );
        }
        for p in probes.iter().take(500) {
            let key = p.to_bytes();
            assert_eq!(
                filter.contains(&key),
                filter.contains_profiled(&key, &mut stats),
                "{} disagrees with its profiled path on negatives",
                filter.kind_name()
            );
        }
        assert_eq!(stats.operations, 1000);
        assert!(stats.word_reads > 0);
    }
}

#[test]
fn shbf_m_access_counts_are_half_of_bf() {
    // The Fig. 8 invariant as a strict check: worst-case accesses per
    // positive query are exactly k/2 (ShBF) vs k (BF).
    let n = 2000usize;
    let flows = distinct_flows(n, 13);
    let mut shbf_f = ShbfM::new(40_000, 8, 13).unwrap();
    let mut bf_f = Bf::new(40_000, 8, 13).unwrap();
    for f in &flows {
        shbf_f.insert(&f.to_bytes());
        bf_f.insert(&f.to_bytes());
    }
    let mut s_stats = shbf::bits::AccessStats::new();
    let mut b_stats = shbf::bits::AccessStats::new();
    for f in &flows {
        let key = f.to_bytes();
        shbf_f.contains_profiled(&key, &mut s_stats);
        bf_f.contains_profiled(&key, &mut b_stats);
    }
    assert_eq!(s_stats.reads_per_op(), 4.0);
    assert_eq!(b_stats.reads_per_op(), 8.0);
    assert_eq!(s_stats.hashes_per_op(), 5.0);
    assert_eq!(b_stats.hashes_per_op(), 8.0);
}

fn estimator_zoo(n: usize, k: usize, seed: u64) -> Vec<Box<dyn CountEstimator>> {
    let bits = 30 * n;
    vec![
        Box::new(SpectralBf::new(bits / 6, k, seed).unwrap()),
        Box::new(CmSketch::new(k, bits / 6 / k, seed).unwrap()),
        Box::new(ScmSketch::new(k, bits / 8 / k, seed).unwrap()),
        Box::new(Dcf::new(n * 2, k, seed).unwrap()),
    ]
}

#[test]
fn no_count_estimator_undershoots() {
    let n = 2000usize;
    let k = 8usize;
    let flows = distinct_flows(n, 17);
    let counts: Vec<([u8; 13], u64)> = flows
        .iter()
        .enumerate()
        .map(|(i, f)| (f.to_bytes(), (i as u64 % 9) + 1))
        .collect();

    // ShBF_X (build-once) first.
    let shbf_x = ShbfX::build(&counts, 30 * n, k, 57, 17).unwrap();
    for (key, truth) in &counts {
        assert!(shbf_x.estimate(key) >= *truth, "ShBF_X undershot");
    }

    // Then every updatable estimator, fed one occurrence at a time.
    for est in estimator_zoo(n, k, 17).iter_mut() {
        let e: &mut dyn CountEstimator = est.as_mut();
        // CountEstimator has no insert; feed through the concrete types is
        // covered in their own crates. Here we only check the absent floor.
        for probe in negatives_for(&flows, 2000, 0xCC) {
            let est_val = e.estimate(&probe.to_bytes());
            // Empty structures must report 0 for everything.
            assert_eq!(est_val, 0, "{} nonzero on empty structure", e.kind_name());
        }
    }
}

#[test]
fn estimators_report_zero_for_most_absent_keys_when_loaded() {
    let n = 2000usize;
    let k = 8usize;
    let flows = distinct_flows(n, 19);
    // Counter-count budgets chosen so fill ratios sit near the BF optimum:
    // Spectral/DCF want ~k/ln2 ≈ 11.5 counters per element at k = 8;
    // CM/SCM rows want r ≈ 2n so each row is ~40% full.
    let mut spectral = SpectralBf::new(16 * n, k, 19).unwrap();
    let mut cm = CmSketch::new(k, 2 * n, 19).unwrap();
    let mut scm = ScmSketch::new(k, n, 19).unwrap();
    let mut dcf = Dcf::new(16 * n, k, 19).unwrap();
    for f in &flows {
        let key = f.to_bytes();
        spectral.insert(&key);
        cm.insert(&key);
        scm.insert(&key);
        dcf.insert(&key);
    }
    let absent = negatives_for(&flows, 20_000, 0xDD);
    for (name, est) in [
        ("spectral", &spectral as &dyn CountEstimator),
        ("cm", &cm),
        ("scm", &scm),
        ("dcf", &dcf),
    ] {
        let zeros = absent
            .iter()
            .filter(|f| est.estimate(&f.to_bytes()) == 0)
            .count();
        let rate = zeros as f64 / absent.len() as f64;
        assert!(
            rate > 0.95,
            "{name}: only {rate:.4} of absent keys report 0"
        );
    }
}
