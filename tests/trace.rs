//! End-to-end tracing tests: `/trace` scraped over HTTP under pipelined
//! load and validated as strict Chrome trace-event JSON (span trees,
//! parent/child interval containment), WAL append/fsync spans on a
//! durable primary, the `TRACE` admin verb, slow-trace capture into
//! `SLOWLOG`, replica apply spans linked to the primary's trace, and
//! the zero-recording guarantee with sampling off.
//!
//! Trace sampling is process-global (each server boot sets it), so
//! every test here serializes on [`SERIAL`].

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use shbf::server::{Client, Engine, Server, ServerConfig, ServerHandle, TransportKind};

static SERIAL: Mutex<()> = Mutex::new(());

fn start(config: ServerConfig) -> (ServerHandle, SocketAddr, Option<SocketAddr>) {
    let engine = Arc::new(Engine::new());
    let server = Server::bind("127.0.0.1:0", engine, config).unwrap();
    let metrics_addr = server.metrics_addr();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();
    (handle, addr, metrics_addr)
}

/// One HTTP GET against the observability endpoint: `(head, body)`.
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("head/body split");
    (head.to_string(), body.to_string())
}

// ---------------------------------------------------------------------
// A strict, dependency-free JSON parser. Numbers keep their raw text so
// `ts`/`dur` (microseconds with a nanosecond fraction) can be compared
// exactly as integer nanoseconds — f64 loses sub-microsecond precision
// at epoch magnitudes.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    fn str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }
    fn num(&self) -> &str {
        match self {
            Json::Num(s) => s,
            other => panic!("expected number, got {other:?}"),
        }
    }
    fn arr(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            other => panic!("expected array, got {other:?}"),
        }
    }
}

struct JsonParser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> JsonParser<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }
    fn peek(&self) -> u8 {
        *self.b.get(self.i).unwrap_or_else(|| {
            panic!("unexpected end of JSON at byte {}", self.i);
        })
    }
    fn eat(&mut self, c: u8) {
        assert_eq!(
            self.peek(),
            c,
            "expected `{}` at byte {}, got `{}`",
            c as char,
            self.i,
            self.peek() as char
        );
        self.i += 1;
    }
    fn literal(&mut self, word: &str) {
        assert!(
            self.b[self.i..].starts_with(word.as_bytes()),
            "bad literal at byte {}",
            self.i
        );
        self.i += word.len();
    }
    fn string(&mut self) -> String {
        self.eat(b'"');
        let mut out = String::new();
        loop {
            let c = self.peek();
            self.i += 1;
            match c {
                b'"' => return out,
                b'\\' => {
                    let e = self.peek();
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4]).unwrap();
                            let code = u32::from_str_radix(hex, 16).expect("bad \\u escape");
                            self.i += 4;
                            out.push(char::from_u32(code).expect("bad codepoint"));
                        }
                        other => panic!("bad escape `\\{}`", other as char),
                    }
                }
                c if c < 0x20 => panic!("raw control byte {c:#x} in string"),
                c => {
                    // Reassemble multi-byte UTF-8 sequences.
                    let start = self.i - 1;
                    let len = match c {
                        c if c < 0x80 => 1,
                        c if c >= 0xF0 => 4,
                        c if c >= 0xE0 => 3,
                        _ => 2,
                    };
                    self.i = start + len;
                    out.push_str(std::str::from_utf8(&self.b[start..self.i]).unwrap());
                }
            }
        }
    }
    fn number(&mut self) -> String {
        let start = self.i;
        if self.peek() == b'-' {
            self.i += 1;
        }
        while self.i < self.b.len()
            && matches!(
                self.b[self.i],
                b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-'
            )
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i])
            .unwrap()
            .to_string();
        text.parse::<f64>()
            .unwrap_or_else(|_| panic!("unparsable number `{text}`"));
        text
    }
    fn value(&mut self) -> Json {
        self.ws();
        match self.peek() {
            b'{' => {
                self.eat(b'{');
                let mut pairs = Vec::new();
                self.ws();
                if self.peek() == b'}' {
                    self.eat(b'}');
                    return Json::Obj(pairs);
                }
                loop {
                    self.ws();
                    let key = self.string();
                    self.ws();
                    self.eat(b':');
                    let value = self.value();
                    assert!(
                        !pairs.iter().any(|(k, _)| *k == key),
                        "duplicate key `{key}`"
                    );
                    pairs.push((key, value));
                    self.ws();
                    match self.peek() {
                        b',' => self.eat(b','),
                        b'}' => {
                            self.eat(b'}');
                            return Json::Obj(pairs);
                        }
                        other => panic!("expected `,` or `}}`, got `{}`", other as char),
                    }
                }
            }
            b'[' => {
                self.eat(b'[');
                let mut items = Vec::new();
                self.ws();
                if self.peek() == b']' {
                    self.eat(b']');
                    return Json::Arr(items);
                }
                loop {
                    items.push(self.value());
                    self.ws();
                    match self.peek() {
                        b',' => self.eat(b','),
                        b']' => {
                            self.eat(b']');
                            return Json::Arr(items);
                        }
                        other => panic!("expected `,` or `]`, got `{}`", other as char),
                    }
                }
            }
            b'"' => Json::Str(self.string()),
            b't' => {
                self.literal("true");
                Json::Bool(true)
            }
            b'f' => {
                self.literal("false");
                Json::Bool(false)
            }
            b'n' => {
                self.literal("null");
                Json::Null
            }
            _ => Json::Num(self.number()),
        }
    }
}

fn parse_json(text: &str) -> Json {
    let mut p = JsonParser {
        b: text.as_bytes(),
        i: 0,
    };
    let value = p.value();
    p.ws();
    assert_eq!(p.i, p.b.len(), "trailing bytes after JSON document");
    value
}

/// `"1754640000123456.789"` (µs with ns fraction) → exact nanoseconds.
fn ns_of(num_text: &str) -> u128 {
    let (whole, frac) = num_text.split_once('.').unwrap_or((num_text, ""));
    let whole: u128 = whole.parse().unwrap_or_else(|_| {
        panic!("ts/dur must be a non-negative decimal, got `{num_text}`");
    });
    assert!(
        frac.len() <= 3 && frac.chars().all(|c| c.is_ascii_digit()),
        "ts/dur fraction must be up to 3 digits, got `{num_text}`"
    );
    let frac_ns: u128 = format!("{frac:0<3}").parse().unwrap();
    whole * 1_000 + frac_ns
}

/// One validated trace event.
#[derive(Debug)]
struct Event {
    name: String,
    ts_ns: u128,
    dur_ns: u128,
    trace_id: u64,
    span: usize,
    parent: Option<usize>,
    args: HashMap<String, String>,
}

/// Validates a `/trace` body strictly as Chrome trace-event JSON (the
/// object form): every event complete (`ph == "X"`), `cat == "shbf"`,
/// span indices unique per trace, exactly one parentless root per
/// trace, every parent reference valid and opened before its child, and
/// every child interval contained in its parent's — compared exactly in
/// integer nanoseconds. Returns the events for further assertions.
fn validate_chrome_trace(body: &str) -> Vec<Event> {
    let doc = parse_json(body);
    assert_eq!(
        doc.get("displayTimeUnit").expect("displayTimeUnit").str(),
        "ms"
    );
    let mut events = Vec::new();
    for raw in doc.get("traceEvents").expect("traceEvents").arr() {
        assert_eq!(raw.get("ph").expect("ph").str(), "X", "{raw:?}");
        assert_eq!(raw.get("cat").expect("cat").str(), "shbf", "{raw:?}");
        raw.get("pid").expect("pid").num();
        raw.get("tid").expect("tid").num();
        let args = raw.get("args").expect("args");
        let trace_id = u64::from_str_radix(args.get("trace_id").expect("trace_id").str(), 16)
            .expect("trace_id is lowercase hex");
        let span: usize = args.get("span").expect("span").num().parse().unwrap();
        let parent = args
            .get("parent")
            .map(|p| p.num().parse::<usize>().unwrap());
        let mut attrs = HashMap::new();
        if let Json::Obj(pairs) = args {
            for (k, v) in pairs {
                if let Json::Str(s) = v {
                    attrs.insert(k.clone(), s.clone());
                }
            }
        }
        events.push(Event {
            name: raw.get("name").expect("name").str().to_string(),
            ts_ns: ns_of(raw.get("ts").expect("ts").num()),
            dur_ns: ns_of(raw.get("dur").expect("dur").num()),
            trace_id,
            span,
            parent,
            args: attrs,
        });
    }

    // Per-trace tree checks.
    let mut by_trace: HashMap<u64, Vec<&Event>> = HashMap::new();
    for e in &events {
        by_trace.entry(e.trace_id).or_default().push(e);
    }
    for (trace_id, mut spans) in by_trace {
        spans.sort_by_key(|e| e.span);
        for (i, e) in spans.iter().enumerate() {
            assert_eq!(e.span, i, "trace {trace_id:x}: span indices not dense");
        }
        let roots = spans.iter().filter(|e| e.parent.is_none()).count();
        assert_eq!(roots, 1, "trace {trace_id:x}: want exactly one root");
        assert!(
            spans[0].parent.is_none(),
            "trace {trace_id:x}: span 0 must be the root"
        );
        for e in &spans[1..] {
            let parent = spans[e.parent.unwrap_or_else(|| {
                panic!(
                    "trace {trace_id:x}: non-root span {} without parent",
                    e.span
                )
            })];
            assert!(
                parent.span < e.span,
                "trace {trace_id:x}: parent {} not opened before child {}",
                parent.span,
                e.span
            );
            assert!(
                e.ts_ns >= parent.ts_ns && e.ts_ns + e.dur_ns <= parent.ts_ns + parent.dur_ns,
                "trace {trace_id:x}: span {} `{}` [{}, {}] escapes parent {} `{}` [{}, {}]",
                e.span,
                e.name,
                e.ts_ns,
                e.ts_ns + e.dur_ns,
                parent.span,
                parent.name,
                parent.ts_ns,
                parent.ts_ns + parent.dur_ns
            );
        }
    }
    events
}

#[test]
fn trace_scrape_under_pipelined_load_is_valid_chrome_json() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (handle, addr, metrics_addr) = start(ServerConfig {
        transport: TransportKind::Evented,
        metrics_addr: Some("127.0.0.1:0".into()),
        trace_sample: 1,
        ..ServerConfig::default()
    });
    let metrics_addr = metrics_addr.unwrap();

    let mut client = Client::connect(addr).unwrap();
    assert_eq!(
        client
            .send_expect_one("CREATE flows shbf-m 140000 8")
            .unwrap(),
        "+OK"
    );
    let mut batch: Vec<String> = Vec::new();
    for i in 0..50 {
        batch.push(format!("INSERT flows key-{i}"));
    }
    batch.push("MQUERY flows key-1 key-2 nope-1".into());
    batch.push("STATS flows".into());
    for i in 0..100 {
        // Adjacent pipelined QUERYs coalesce on the evented transport;
        // trailing the pipeline, the group flushes at buffer drain and
        // is traced as one request with a `batch` attr.
        batch.push(format!("QUERY flows key-{i}"));
    }
    let refs: Vec<&str> = batch.iter().map(String::as_str).collect();
    let replies = client.send_pipelined(&refs).unwrap();
    assert_eq!(replies.len(), refs.len());

    let (head, body) = http_get(metrics_addr, "/trace");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(head.contains("Content-Type: application/json"), "{head}");
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .parse()
        .unwrap();
    assert_eq!(content_length, body.len(), "Content-Length mismatch");

    let events = validate_chrome_trace(&body);
    assert!(!events.is_empty(), "no events recorded at 1in1 sampling");
    for name in ["request", "parse", "dispatch", "engine"] {
        assert!(
            events.iter().any(|e| e.name == name),
            "missing `{name}` span in:\n{body}"
        );
    }
    // The coalesced query group rode as one traced batch.
    assert!(
        events
            .iter()
            .any(|e| e.name == "request" && e.args.contains_key("batch")),
        "no batched query-group trace in:\n{body}"
    );

    drop(client);
    handle.shutdown().unwrap();
}

#[test]
fn wal_mutation_traced_end_to_end_and_replica_links_primary_trace() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = std::env::temp_dir().join(format!(
        "shbf-trace-wal-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();

    let (primary, primary_addr, primary_metrics) = start(ServerConfig {
        wal_dir: Some(dir.clone()),
        fsync: shbf::server::FsyncPolicy::Always,
        metrics_addr: Some("127.0.0.1:0".into()),
        trace_sample: 1,
        ..ServerConfig::default()
    });
    let (replica, replica_addr, replica_metrics) = start(ServerConfig {
        replica_of: Some(primary_addr.to_string()),
        metrics_addr: Some("127.0.0.1:0".into()),
        trace_sample: 1,
        ..ServerConfig::default()
    });

    let mut client = Client::connect(primary_addr).unwrap();
    assert_eq!(
        client
            .send_expect_one("CREATE flows shbf-m 65536 8")
            .unwrap(),
        "+OK"
    );
    for i in 0..10 {
        assert_eq!(
            client
                .send_expect_one(&format!("INSERT flows key-{i}"))
                .unwrap(),
            "+OK"
        );
    }

    // Wait for the replica to apply the tail.
    let mut replica_client = Client::connect(replica_addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let reply = replica_client
            .send_expect_one("QUERY flows key-9")
            .unwrap_or_else(|_| ":0".into());
        if reply == ":1" {
            break;
        }
        assert!(Instant::now() < deadline, "replica never caught up");
        std::thread::sleep(Duration::from_millis(25));
    }

    // The primary's JSON: a mutation traced through transport, engine,
    // WAL append, and fsync — in one tree.
    let (_, primary_body) = http_get(primary_metrics.unwrap(), "/trace");
    let primary_events = validate_chrome_trace(&primary_body);
    let insert_trace = primary_events
        .iter()
        .find(|e| e.name == "wal_fsync")
        .unwrap_or_else(|| panic!("no wal_fsync span in:\n{primary_body}"))
        .trace_id;
    let tree: Vec<&str> = primary_events
        .iter()
        .filter(|e| e.trace_id == insert_trace)
        .map(|e| e.name.as_str())
        .collect();
    for name in ["request", "dispatch", "engine", "wal_append", "wal_fsync"] {
        assert!(
            tree.contains(&name),
            "mutation trace {insert_trace:x} missing `{name}`: {tree:?}"
        );
    }

    // The replica's JSON: apply batches whose root carries the
    // primary's PULLOPS trace id — and that id is a real trace on the
    // primary.
    let (_, replica_body) = http_get(replica_metrics.unwrap(), "/trace");
    let replica_events = validate_chrome_trace(&replica_body);
    let batch_root = replica_events
        .iter()
        .find(|e| e.name == "replica_apply_batch" && e.args.contains_key("primary_trace"))
        .unwrap_or_else(|| panic!("no linked replica_apply_batch in:\n{replica_body}"));
    assert!(
        replica_events
            .iter()
            .any(|e| e.trace_id == batch_root.trace_id && e.name == "apply"),
        "batch trace {:x} has no apply span",
        batch_root.trace_id
    );
    let primary_trace =
        u64::from_str_radix(&batch_root.args["primary_trace"], 16).expect("hex trace id");
    let (_, primary_body) = http_get(primary_metrics.unwrap(), "/trace");
    let primary_events = validate_chrome_trace(&primary_body);
    assert!(
        primary_events.iter().any(|e| e.trace_id == primary_trace),
        "replica links primary trace {primary_trace:x}, absent from the primary's ring"
    );

    drop(client);
    drop(replica_client);
    replica.shutdown().unwrap();
    primary.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_verb_round_trip() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (handle, addr, _) = start(ServerConfig {
        trace_sample: 1,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(
        client.send_expect_one("CREATE t shbf-m 65536 8").unwrap(),
        "+OK"
    );
    assert_eq!(client.send_expect_one("INSERT t alpha").unwrap(), "+OK");
    assert_eq!(client.send_expect_one("QUERY t alpha").unwrap(), ":1");

    let len: u64 = client
        .send_expect_one("TRACE LEN")
        .unwrap()
        .trim_start_matches(':')
        .parse()
        .unwrap();
    assert!(len >= 3, "want >= 3 recorded traces, got {len}");

    // Entries are `<hex id> <unix secs> <duration µs> <spans> <root>`.
    let lines = client.send("TRACE GET 5").unwrap();
    assert!(lines[0].starts_with('*'), "{lines:?}");
    assert!(lines.len() >= 2, "TRACE GET returned nothing: {lines:?}");
    for entry in &lines[1..] {
        let fields: Vec<&str> = entry.trim_start_matches('+').split(' ').collect();
        assert_eq!(fields.len(), 5, "entry shape: {entry}");
        u64::from_str_radix(fields[0], 16).expect("hex trace id");
        fields[1].parse::<u64>().expect("unix seconds");
        fields[2].parse::<u64>().expect("duration µs");
        let spans: usize = fields[3].parse().expect("span count");
        assert!(spans >= 1, "empty trace in {entry}");
        assert_eq!(fields[4], "request", "root span name: {entry}");
    }

    assert_eq!(client.send_expect_one("TRACE RESET").unwrap(), "+OK");
    let len: u64 = client
        .send_expect_one("TRACE LEN")
        .unwrap()
        .trim_start_matches(':')
        .parse()
        .unwrap();
    // The RESET's own trace publishes after its reply, so the ring is
    // nearly — not exactly — empty.
    assert!(len <= 2, "ring should be nearly empty after RESET: {len}");

    drop(client);
    handle.shutdown().unwrap();
}

#[test]
fn slow_request_retains_trace_and_slowlog_carries_phases() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (handle, addr, metrics_addr) = start(ServerConfig {
        metrics_addr: Some("127.0.0.1:0".into()),
        trace_sample: 1,
        slowlog_us: 1,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(
        client.send_expect_one("CREATE s shbf-m 262144 8").unwrap(),
        "+OK"
    );
    let minsert = format!(
        "MINSERT s {}",
        (0..4000)
            .map(|i| format!("key-{i}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    assert_eq!(client.send_expect_one(&minsert).unwrap(), ":4000");

    let lines = client.send("SLOWLOG GET 10").unwrap();
    assert!(lines.len() >= 2, "MINSERT should be logged: {lines:?}");
    let newest = &lines[1];
    let fields: Vec<&str> = newest.trim_start_matches('+').splitn(9, ' ').collect();
    assert_eq!(fields.len(), 9, "entry shape: {newest}");
    let trace_id = fields[3]
        .strip_prefix("trace=")
        .expect("trace column")
        .to_string();
    assert_ne!(trace_id, "-", "traced request must carry its id: {newest}");
    u64::from_str_radix(&trace_id, 16).expect("hex trace id");
    let phase = |field: &str, name: &str| -> u64 {
        field
            .strip_prefix(&format!("{name}="))
            .unwrap_or_else(|| panic!("bad {name} column in {newest}"))
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be numeric on a traced entry: {newest}"))
    };
    let parse_us = phase(fields[4], "parse");
    let engine_us = phase(fields[5], "engine");
    let wal_us = phase(fields[6], "wal");
    let write_us = phase(fields[7], "write");
    assert!(engine_us >= 1, "4000-key MINSERT engine phase: {newest}");
    assert_eq!(wal_us, 0, "no WAL on this server: {newest}");
    // parse/write phases exist (numeric), whatever they rounded to.
    let _ = (parse_us, write_us);
    assert_eq!(fields[8], "MINSERT s (4000 keys)", "summary: {newest}");

    // The retained slow trace is findable in the exported JSON.
    let (_, body) = http_get(metrics_addr.unwrap(), "/trace");
    let events = validate_chrome_trace(&body);
    let id = u64::from_str_radix(&trace_id, 16).unwrap();
    assert!(
        events.iter().any(|e| e.trace_id == id),
        "slowlog trace {trace_id} missing from /trace"
    );

    drop(client);
    handle.shutdown().unwrap();
}

#[test]
fn sampling_off_records_nothing() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (handle, addr, metrics_addr) = start(ServerConfig {
        metrics_addr: Some("127.0.0.1:0".into()),
        trace_sample: 0,
        slowlog_us: 1,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(
        client.send_expect_one("CREATE z shbf-m 65536 8").unwrap(),
        "+OK"
    );
    for i in 0..20 {
        client
            .send_expect_one(&format!("INSERT z key-{i}"))
            .unwrap();
    }
    let minsert = format!(
        "MINSERT z {}",
        (0..2000)
            .map(|i| format!("bulk-{i}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    assert_eq!(client.send_expect_one(&minsert).unwrap(), ":2000");

    assert_eq!(client.send_expect_one("TRACE LEN").unwrap(), ":0");
    let (head, body) = http_get(metrics_addr.unwrap(), "/trace");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    let doc = parse_json(&body);
    assert!(
        doc.get("traceEvents")
            .expect("traceEvents")
            .arr()
            .is_empty(),
        "sampling off must record zero spans: {body}"
    );
    // Slow entries still log, but without a trace.
    let lines = client.send("SLOWLOG GET 5").unwrap();
    assert!(lines.len() >= 2, "{lines:?}");
    assert!(
        lines[1..].iter().all(|l| l.contains(" trace=- ")),
        "untraced entries must show trace=-: {lines:?}"
    );

    drop(client);
    handle.shutdown().unwrap();
}
