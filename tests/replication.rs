//! Replication integration tests: a WAL-backed primary and read
//! replicas in one process, driven over real TCP loopback sockets.
//!
//! The headline assertion mirrors the recovery test: once a replica
//! reports lag 0, its registry snapshot is **byte-identical** to the
//! primary's. Around it: full-sync + tail streaming, runtime `REPLICAOF`
//! attach/detach, read-only mutation rejection, and `STATS replication`
//! on both sides.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use shbf::server::{Client, Engine, FsyncPolicy, Server, ServerConfig, ServerHandle};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "shbf-repl-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_primary(wal_dir: &Path) -> (ServerHandle, SocketAddr) {
    let config = ServerConfig {
        wal_dir: Some(wal_dir.to_path_buf()),
        fsync: FsyncPolicy::No, // durability is covered by wal_recovery
        snapshot_every_ops: 1_000_000,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Arc::new(Engine::new()), config).unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();
    (handle, addr)
}

fn start_replica(primary: SocketAddr) -> (ServerHandle, SocketAddr) {
    let config = ServerConfig {
        replica_of: Some(primary.to_string()),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Arc::new(Engine::new()), config).unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();
    (handle, addr)
}

fn expect_ok(client: &mut Client, command: &str) {
    let reply = client.send_expect_one(command).unwrap();
    assert!(
        reply.starts_with("+OK") || reply.starts_with(':'),
        "`{command}` replied `{reply}`"
    );
}

/// Fetches one `k=v` field from a `STATS replication` reply.
fn replication_field(client: &mut Client, key: &str) -> Option<String> {
    let lines = client.send("STATS replication").unwrap();
    lines.iter().find_map(|l| {
        l.strip_prefix('+')?
            .strip_prefix(key)?
            .strip_prefix('=')
            .map(str::to_string)
    })
}

/// Polls the replica until it has applied the primary's log through
/// `target_seq` (and reports lag 0 against its own view).
fn await_caught_up(replica: &mut Client, target_seq: u64) {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let applied: u64 = replication_field(replica, "applied_seq")
            .expect("replica reports applied_seq")
            .parse()
            .unwrap();
        let lag: u64 = replication_field(replica, "lag").unwrap().parse().unwrap();
        if applied >= target_seq && lag == 0 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "replica stuck at applied_seq={applied} (target {target_seq}, lag {lag})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn primary_last_seq(primary: &mut Client) -> u64 {
    replication_field(primary, "last_seq")
        .expect("primary reports last_seq")
        .parse()
        .unwrap()
}

#[test]
fn replicas_full_sync_tail_and_answer_byte_identically() {
    let wal_dir = temp_dir("wal");
    let out_dir = temp_dir("out");
    let (primary_handle, primary_addr) = start_primary(&wal_dir);
    let mut primary = Client::connect(primary_addr).unwrap();

    // Pre-load the primary so full-sync ships a non-trivial snapshot.
    expect_ok(&mut primary, "CREATE flows shbf-m 200000 8 4 7");
    expect_ok(&mut primary, "CREATE sizes shbf-x 8192 6 30 3");
    for i in 0..300 {
        expect_ok(&mut primary, &format!("INSERT flows pre-{i}"));
    }
    expect_ok(&mut primary, "INSERT sizes f");
    expect_ok(&mut primary, "INSERT sizes f");

    let (replica1_handle, replica1_addr) = start_replica(primary_addr);
    let (replica2_handle, replica2_addr) = start_replica(primary_addr);
    let mut replica1 = Client::connect(replica1_addr).unwrap();
    let mut replica2 = Client::connect(replica2_addr).unwrap();

    // Phase 1: both replicas converge on the pre-loaded state (this path
    // is full-sync — the replicas started empty).
    let seq = primary_last_seq(&mut primary);
    assert!(seq >= 302, "primary logged {seq} ops, expected 302+");
    await_caught_up(&mut replica1, seq);
    await_caught_up(&mut replica2, seq);

    // Phase 2: post-sync mutations stream through the log tail.
    for i in 0..200 {
        expect_ok(&mut primary, &format!("INSERT flows tail-{i}"));
    }
    expect_ok(&mut primary, "DELETE sizes f");
    let seq = primary_last_seq(&mut primary);
    await_caught_up(&mut replica1, seq);
    await_caught_up(&mut replica2, seq);

    // Headline: at lag 0 the registries are byte-identical. (No queries
    // before the snapshots — hit counters are part of the blob.)
    let p_snap = out_dir.join("primary.snap");
    let r1_snap = out_dir.join("replica1.snap");
    let r2_snap = out_dir.join("replica2.snap");
    expect_ok(&mut primary, &format!("SNAPSHOT {}", p_snap.display()));
    expect_ok(&mut replica1, &format!("SNAPSHOT {}", r1_snap.display()));
    expect_ok(&mut replica2, &format!("SNAPSHOT {}", r2_snap.display()));
    let p_blob = std::fs::read(&p_snap).unwrap();
    assert_eq!(
        p_blob,
        std::fs::read(&r1_snap).unwrap(),
        "replica 1 snapshot differs from the primary at lag 0"
    );
    assert_eq!(
        p_blob,
        std::fs::read(&r2_snap).unwrap(),
        "replica 2 snapshot differs from the primary at lag 0"
    );

    // Reads answer identically, frame for frame.
    for key in ["pre-0", "pre-299", "tail-0", "tail-199", "never-inserted-x"] {
        let q = format!("QUERY flows {key}");
        assert_eq!(
            primary.send(&q).unwrap(),
            replica1.send(&q).unwrap(),
            "`{q}` diverged"
        );
    }
    let mq = "MQUERY flows pre-0 tail-5 nope-1 pre-150 nope-2";
    assert_eq!(primary.send(mq).unwrap(), replica1.send(mq).unwrap());
    assert_eq!(primary.send(mq).unwrap(), replica2.send(mq).unwrap());
    assert_eq!(
        primary.send("COUNT sizes f").unwrap(),
        replica1.send("COUNT sizes f").unwrap()
    );

    // Replicas reject every mutation kind with the documented error.
    for bad in [
        "INSERT flows nope",
        "DELETE flows pre-0",
        "MINSERT flows a b",
        "CREATE other shbf-m 1000 4",
        "DROP flows",
    ] {
        let reply = replica1.send_expect_one(bad).unwrap();
        assert!(
            reply.starts_with("-ERR read only replica"),
            "`{bad}` on a replica replied `{reply}`"
        );
    }

    // Primary-side stats see both pollers.
    assert_eq!(
        replication_field(&mut primary, "role").as_deref(),
        Some("primary")
    );
    assert_eq!(
        replication_field(&mut primary, "replicas").as_deref(),
        Some("2")
    );
    assert_eq!(
        replication_field(&mut replica1, "role").as_deref(),
        Some("replica")
    );
    assert_eq!(
        replication_field(&mut replica1, "primary").as_deref(),
        Some(primary_addr.to_string().as_str())
    );

    // Detach: the ex-replica becomes writable, local-only.
    assert_eq!(replica1.send_expect_one("REPLICAOF NO ONE").unwrap(), "+OK");
    assert_eq!(
        replication_field(&mut replica1, "role").as_deref(),
        Some("primary"),
        "detached replica still reports replica role"
    );
    expect_ok(&mut replica1, "INSERT flows local-after-detach");
    assert_eq!(
        replica1
            .send_expect_one("QUERY flows local-after-detach")
            .unwrap(),
        ":1"
    );
    // ...and the primary never saw that key.
    assert_eq!(
        primary
            .send_expect_one("QUERY flows local-after-detach")
            .unwrap(),
        ":0"
    );

    replica1_handle.shutdown().unwrap();
    replica2_handle.shutdown().unwrap();
    primary_handle.shutdown().unwrap();
    std::fs::remove_dir_all(&wal_dir).ok();
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn replicaof_verb_attaches_a_running_server() {
    let wal_dir = temp_dir("verb");
    let (primary_handle, primary_addr) = start_primary(&wal_dir);
    let mut primary = Client::connect(primary_addr).unwrap();
    expect_ok(&mut primary, "CREATE flows shbf-m 100000 8 4 7");
    for i in 0..50 {
        expect_ok(&mut primary, &format!("INSERT flows k-{i}"));
    }

    // A plain server — with its own pre-existing state — attaches at
    // runtime; full sync replaces that state with the primary's.
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::new(Engine::new()),
        ServerConfig::default(),
    )
    .unwrap();
    let handle = server.spawn().unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    expect_ok(&mut client, "CREATE stale shbf-m 1000 4");
    assert_eq!(
        client
            .send_expect_one(&format!("REPLICAOF {primary_addr}"))
            .unwrap(),
        "+OK"
    );
    let seq = primary_last_seq(&mut primary);
    await_caught_up(&mut client, seq);
    // The pre-attach namespace was replaced by the primary's world.
    let reply = client.send_expect_one("QUERY stale x").unwrap();
    assert!(
        reply.starts_with("-ERR"),
        "stale pre-attach namespace survived full sync: {reply}"
    );
    assert_eq!(client.send_expect_one("QUERY flows k-49").unwrap(), ":1");

    handle.shutdown().unwrap();
    primary_handle.shutdown().unwrap();
    std::fs::remove_dir_all(&wal_dir).ok();
}

#[test]
fn load_on_the_primary_forces_replicas_to_resync() {
    let wal_dir = temp_dir("load");
    let out_dir = temp_dir("load-out");
    let (primary_handle, primary_addr) = start_primary(&wal_dir);
    let mut primary = Client::connect(primary_addr).unwrap();

    // State A, saved to disk.
    expect_ok(&mut primary, "CREATE flows shbf-m 100000 8 4 7");
    for i in 0..50 {
        expect_ok(&mut primary, &format!("INSERT flows keep-{i}"));
    }
    let world = out_dir.join("world.snap");
    expect_ok(&mut primary, &format!("SNAPSHOT {}", world.display()));

    let (replica_handle, replica_addr) = start_replica(primary_addr);
    let mut replica = Client::connect(replica_addr).unwrap();

    // Diverge past the saved state, with the replica tailing along.
    for i in 0..50 {
        expect_ok(&mut primary, &format!("INSERT flows drop-{i}"));
    }
    let seq = primary_last_seq(&mut primary);
    await_caught_up(&mut replica, seq);
    assert_eq!(
        replica.send_expect_one("QUERY flows drop-49").unwrap(),
        ":1"
    );

    // Roll the primary back to state A. The replica's log position is
    // now meaningless: it must full-resync onto the post-LOAD snapshot,
    // not keep serving the pre-LOAD world while reporting lag 0.
    expect_ok(&mut primary, &format!("LOAD {}", world.display()));
    let seq = primary_last_seq(&mut primary);
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let applied: u64 = replication_field(&mut replica, "applied_seq")
            .unwrap()
            .parse()
            .unwrap();
        let lag: u64 = replication_field(&mut replica, "lag")
            .unwrap()
            .parse()
            .unwrap();
        let dropped = replica.send_expect_one("QUERY flows drop-49").unwrap() == ":0";
        if applied >= seq && lag == 0 && dropped {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replica never resynced past the LOAD (applied {applied}, lag {lag}, dropped {dropped})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // ...and it still answers for the restored state.
    assert_eq!(replica.send_expect_one("QUERY flows keep-0").unwrap(), ":1");

    replica_handle.shutdown().unwrap();
    primary_handle.shutdown().unwrap();
    std::fs::remove_dir_all(&wal_dir).ok();
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn wal_and_replica_roles_are_mutually_exclusive() {
    let wal_dir = temp_dir("excl");
    let (primary_handle, primary_addr) = start_primary(&wal_dir);

    // A WAL-enabled server refuses the REPLICAOF verb.
    let mut primary = Client::connect(primary_addr).unwrap();
    let reply = primary
        .send_expect_one(&format!("REPLICAOF {primary_addr}"))
        .unwrap();
    assert!(
        reply.starts_with("-ERR") && reply.contains("WAL"),
        "WAL-enabled server accepted REPLICAOF: {reply}"
    );

    // Configuring both at bind time is refused outright.
    let both = ServerConfig {
        wal_dir: Some(temp_dir("excl-wal2")),
        replica_of: Some(primary_addr.to_string()),
        ..ServerConfig::default()
    };
    assert!(
        Server::bind("127.0.0.1:0", Arc::new(Engine::new()), both).is_err(),
        "wal_dir + replica_of config was accepted"
    );

    // SYNC/PULLOPS against a WAL-less server are clean errors, not hangs.
    let plain = Server::bind(
        "127.0.0.1:0",
        Arc::new(Engine::new()),
        ServerConfig::default(),
    )
    .unwrap();
    let plain_handle = plain.spawn().unwrap();
    let mut client = Client::connect(plain_handle.addr()).unwrap();
    for probe in ["SYNC 0", "PULLOPS some-replica 0 64"] {
        let reply = client.send_expect_one(probe).unwrap();
        assert!(
            reply.starts_with("-ERR") && reply.contains("WAL"),
            "`{probe}` on a WAL-less server replied `{reply}`"
        );
    }

    plain_handle.shutdown().unwrap();
    primary_handle.shutdown().unwrap();
    std::fs::remove_dir_all(&wal_dir).ok();
}
