//! Property tests for the batch-query pipeline and digest-once hashing:
//!
//! * batched verdicts == scalar verdicts for every filter type (the
//!   prefetched two-stage path may reorder hashing and probing, never
//!   answers);
//! * `insert_batch` produces bit-identical filters to scalar inserts;
//! * one-shot-family filters survive `to_bytes`/`from_bytes` with identical
//!   query behaviour and stay free of false negatives.

use proptest::collection::vec;
use proptest::prelude::*;

use shbf::concurrent::{BatchScratch, ShardedCShbfM};
use shbf::core::{CShbfA, CShbfM, CShbfX, SetId, ShbfA, ShbfM, ShbfX};
use shbf::hash::FamilyKind;

fn keys_strategy(max_len: usize) -> impl Strategy<Value = Vec<Vec<u8>>> {
    vec(vec(any::<u8>(), 1..24), 1..max_len)
}

const FAMILIES: [FamilyKind; 2] = [
    FamilyKind::Seeded(shbf::hash::HashAlg::Murmur3),
    FamilyKind::OneShot,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shbf_m_batch_equals_scalar(
        members in keys_strategy(150),
        probes in keys_strategy(150),
        seed in any::<u64>(),
    ) {
        for family in FAMILIES {
            let mut f = ShbfM::with_family(8192, 8, 57, family, seed).unwrap();
            f.insert_batch(&members);
            let all: Vec<&Vec<u8>> = members.iter().chain(probes.iter()).collect();
            let batch = f.contains_batch(&all);
            for (i, p) in all.iter().enumerate() {
                prop_assert_eq!(batch[i], f.contains(p), "{:?} probe {}", family, i);
            }
            // No false negatives through the batch path either.
            for v in &batch[..members.len()] {
                prop_assert!(*v, "{:?} batch false negative", family);
            }
        }
    }

    #[test]
    fn shbf_m_insert_batch_equals_scalar_inserts(
        members in keys_strategy(120),
        seed in any::<u64>(),
    ) {
        for family in FAMILIES {
            let mut batched = ShbfM::with_family(4096, 6, 57, family, seed).unwrap();
            batched.insert_batch(&members);
            let mut scalar = ShbfM::with_family(4096, 6, 57, family, seed).unwrap();
            for m in &members {
                scalar.insert(m);
            }
            prop_assert_eq!(batched.to_bytes(), scalar.to_bytes());
        }
    }

    #[test]
    fn cshbf_m_batch_equals_scalar_after_churn(
        members in keys_strategy(120),
        probes in keys_strategy(120),
        seed in any::<u64>(),
    ) {
        for family in FAMILIES {
            let mut f = CShbfM::with_family(8192, 8, 14, 4, family, seed).unwrap();
            f.insert_batch(&members);
            // Delete a third to exercise cleared mirror bits.
            for m in members.iter().step_by(3) {
                f.delete(m).unwrap();
            }
            let all: Vec<&Vec<u8>> = members.iter().chain(probes.iter()).collect();
            let batch = f.contains_batch(&all);
            for (i, p) in all.iter().enumerate() {
                prop_assert_eq!(batch[i], f.contains(p), "{:?} probe {}", family, i);
            }
        }
    }

    #[test]
    fn shbf_x_batch_equals_scalar(
        entries in vec((vec(any::<u8>(), 1..16), 1u64..40), 1..100),
        probes in keys_strategy(100),
        seed in any::<u64>(),
    ) {
        // Dedup keys (last write wins upstream; build() requires unique).
        let mut seen = std::collections::HashSet::new();
        let entries: Vec<(Vec<u8>, u64)> = entries
            .into_iter()
            .filter(|(k, _)| seen.insert(k.clone()))
            .collect();
        for family in FAMILIES {
            let f = ShbfX::build_with_family(&entries, 16_384, 6, 40, family, seed).unwrap();
            let all: Vec<Vec<u8>> = entries
                .iter()
                .map(|(k, _)| k.clone())
                .chain(probes.iter().cloned())
                .collect();
            let batch = f.query_batch(&all);
            for (i, p) in all.iter().enumerate() {
                prop_assert_eq!(batch[i], f.query(p).reported, "{:?} probe {}", family, i);
            }
            // Never underreport through the batch path.
            for (i, (_, count)) in entries.iter().enumerate() {
                prop_assert!(batch[i] >= *count, "{:?} underreported", family);
            }
        }
    }

    #[test]
    fn shbf_a_batch_equals_scalar(
        s1 in keys_strategy(100),
        s2 in keys_strategy(100),
        probes in keys_strategy(100),
        seed in any::<u64>(),
    ) {
        for family in FAMILIES {
            let f = ShbfA::builder()
                .hashes(8)
                .seed(seed)
                .family(family)
                .build(&s1, &s2)
                .unwrap();
            let all: Vec<&Vec<u8>> = s1.iter().chain(s2.iter()).chain(probes.iter()).collect();
            let batch = f.query_batch(&all);
            for (i, p) in all.iter().enumerate() {
                prop_assert_eq!(batch[i], f.query(p), "{:?} probe {}", family, i);
            }
        }
    }

    #[test]
    fn counting_backends_batch_equals_scalar(
        members in keys_strategy(80),
        probes in keys_strategy(80),
        seed in any::<u64>(),
    ) {
        let mut x = CShbfX::new(16_384, 6, 40, seed).unwrap();
        let mut a = CShbfA::new(8192, 8, seed).unwrap();
        for (i, m) in members.iter().enumerate() {
            x.insert(m).unwrap();
            a.insert(m, if i % 2 == 0 { SetId::S1 } else { SetId::S2 });
        }
        let all: Vec<&Vec<u8>> = members.iter().chain(probes.iter()).collect();
        let xb = x.contains_batch(&all);
        let ab = a.query_batch(&all);
        for (i, p) in all.iter().enumerate() {
            prop_assert_eq!(xb[i], x.query(p).reported > 0, "x probe {}", i);
            prop_assert_eq!(ab[i], a.query(p), "a probe {}", i);
        }
    }

    #[test]
    fn sharded_batch_equals_scalar_with_scratch_reuse(
        members in keys_strategy(150),
        probes in keys_strategy(150),
        seed in any::<u64>(),
    ) {
        let f = ShardedCShbfM::new(32_768, 8, 4, seed).unwrap();
        for m in &members {
            f.insert(m);
        }
        let mut out = Vec::new();
        let mut scratch = BatchScratch::default();
        // Two rounds through the same scratch: reuse must not leak state.
        for _ in 0..2 {
            let all: Vec<&Vec<u8>> = members.iter().chain(probes.iter()).collect();
            f.contains_batch_with(&all, &mut out, &mut scratch);
            for (i, p) in all.iter().enumerate() {
                prop_assert_eq!(out[i], f.contains(p), "probe {}", i);
            }
        }
    }

    #[test]
    fn one_shot_filters_roundtrip_identically(
        members in keys_strategy(100),
        probes in keys_strategy(100),
        seed in any::<u64>(),
    ) {
        // ShBF_M
        let mut m = ShbfM::with_family(8192, 8, 57, FamilyKind::OneShot, seed).unwrap();
        m.insert_batch(&members);
        let m2 = ShbfM::from_bytes(&m.to_bytes()).unwrap();
        // ShBF_× (unique keys, count 1..=5)
        let mut seen = std::collections::HashSet::new();
        let entries: Vec<(Vec<u8>, u64)> = members
            .iter()
            .filter(|k| seen.insert((*k).clone()))
            .enumerate()
            .map(|(i, k)| (k.clone(), (i % 5) as u64 + 1))
            .collect();
        let x = ShbfX::build_with_family(&entries, 16_384, 6, 5, FamilyKind::OneShot, seed).unwrap();
        let x2 = ShbfX::from_bytes(&x.to_bytes()).unwrap();
        // ShBF_A
        let a = ShbfA::builder()
            .hashes(8)
            .seed(seed)
            .family(FamilyKind::OneShot)
            .build(&members, &probes)
            .unwrap();
        let a2 = ShbfA::from_bytes(&a.to_bytes()).unwrap();

        for p in members.iter().chain(probes.iter()) {
            prop_assert_eq!(m.contains(p), m2.contains(p));
            prop_assert_eq!(x.query(p), x2.query(p));
            prop_assert_eq!(a.query(p), a2.query(p));
        }
        for p in &members {
            prop_assert!(m2.contains(p), "roundtripped one-shot lost a member");
        }
    }
}
