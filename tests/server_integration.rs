//! Loopback integration tests for the set-query daemon: concurrent TCP
//! clients drive create/insert/query/mquery against a live server, assert
//! the no-false-negative guarantee end to end, and exercise the
//! snapshot → restart → re-query lifecycle the server's persistence
//! promises.

use std::net::SocketAddr;
use std::sync::Arc;

use shbf::server::{Client, Engine, Server, ServerConfig, TransportKind};

fn start_server() -> (shbf::server::ServerHandle, SocketAddr) {
    start_server_with(TransportKind::Threaded)
}

fn start_server_with(transport: TransportKind) -> (shbf::server::ServerHandle, SocketAddr) {
    let engine = Arc::new(Engine::new());
    let config = ServerConfig {
        transport,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", engine, config).unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();
    (handle, addr)
}

fn expect_ok(client: &mut Client, command: &str) {
    let reply = client.send_expect_one(command).unwrap();
    assert!(
        reply.starts_with("+OK"),
        "`{command}` replied `{reply}`, expected +OK"
    );
}

#[test]
fn four_concurrent_clients_no_false_negatives() {
    let (handle, addr) = start_server();

    // One client creates the shared namespace.
    let mut admin = Client::connect(addr).unwrap();
    expect_ok(&mut admin, "CREATE flows shbf-m 400000 8 8 2016");

    const CLIENTS: u64 = 4;
    const KEYS_PER_CLIENT: u64 = 2_000;

    // Phase 1: four clients insert disjoint key ranges concurrently.
    let inserters: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in (c * KEYS_PER_CLIENT)..((c + 1) * KEYS_PER_CLIENT) {
                    let reply = client
                        .send_expect_one(&format!("INSERT flows key-{i}"))
                        .unwrap();
                    assert_eq!(reply, "+OK", "insert key-{i}");
                }
            })
        })
        .collect();
    for t in inserters {
        t.join().unwrap();
    }

    // Phase 2: four clients each verify the FULL key space (including the
    // ranges other clients inserted) via single queries and batches.
    let verifiers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let total = CLIENTS * KEYS_PER_CLIENT;
                // Stagger starting offsets so clients hit different shards.
                for step in 0..total {
                    let i = (step + c * KEYS_PER_CLIENT) % total;
                    let reply = client
                        .send_expect_one(&format!("QUERY flows key-{i}"))
                        .unwrap();
                    assert_eq!(reply, ":1", "false negative on key-{i} (client {c})");
                }
                // Batched form: 64-key MQUERYs across the whole range.
                for chunk_start in (0..total).step_by(64) {
                    let keys: Vec<String> = (chunk_start..(chunk_start + 64).min(total))
                        .map(|i| format!("key-{i}"))
                        .collect();
                    let lines = client
                        .send(&format!("MQUERY flows {}", keys.join(" ")))
                        .unwrap();
                    assert_eq!(lines[0], format!("*{}", keys.len()));
                    for (j, line) in lines[1..].iter().enumerate() {
                        assert_eq!(
                            line,
                            ":1",
                            "false negative in MQUERY at key-{}",
                            chunk_start + j as u64
                        );
                    }
                }
            })
        })
        .collect();
    for t in verifiers {
        t.join().unwrap();
    }

    // STATS reflects the live hit counters: 4 clients × (8000 single +
    // 8000 batched) = 64000 hits, zero misses so far.
    let stats = admin.send("STATS flows").unwrap().join("\n");
    assert!(stats.contains("+hits=64000"), "stats:\n{stats}");
    assert!(stats.contains("+misses=0"), "stats:\n{stats}");
    assert!(stats.contains("+inserts=8000"), "stats:\n{stats}");
    assert!(stats.contains("+kind=shbf-m"), "stats:\n{stats}");

    handle.shutdown().unwrap();
}

#[test]
fn evented_concurrent_pipelined_clients_no_false_negatives() {
    let (handle, addr) = start_server_with(TransportKind::Evented);

    let mut admin = Client::connect(addr).unwrap();
    expect_ok(
        &mut admin,
        "CREATE flows shbf-m 400000 8 8 2016 family=one-shot",
    );
    // Bulk-load through MINSERT (the shard-grouped insert pipeline).
    const TOTAL: u64 = 8_000;
    for chunk_start in (0..TOTAL).step_by(500) {
        let keys: Vec<String> = (chunk_start..chunk_start + 500)
            .map(|i| format!("key-{i}"))
            .collect();
        let reply = admin
            .send_expect_one(&format!("MINSERT flows {}", keys.join(" ")))
            .unwrap();
        assert_eq!(reply, ":500");
    }

    // Four clients verify the whole key space with pipelined QUERYs (the
    // evented transport groups these into shard-batched rides) plus
    // MQUERY batches, concurrently.
    let verifiers: Vec<_> = (0..4u64)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for chunk_start in (0..TOTAL).step_by(64) {
                    let queries: Vec<String> = (chunk_start..(chunk_start + 64).min(TOTAL))
                        .map(|i| format!("QUERY flows key-{}", (i + c * 2000) % TOTAL))
                        .collect();
                    for (j, reply) in client
                        .send_pipelined(&queries)
                        .unwrap()
                        .into_iter()
                        .enumerate()
                    {
                        assert_eq!(
                            reply,
                            vec![":1".to_string()],
                            "false negative (client {c}, chunk {chunk_start}, offset {j})"
                        );
                    }
                }
                for chunk_start in (0..TOTAL).step_by(64) {
                    let keys: Vec<String> = (chunk_start..(chunk_start + 64).min(TOTAL))
                        .map(|i| format!("key-{i}"))
                        .collect();
                    let lines = client
                        .send(&format!("MQUERY flows {}", keys.join(" ")))
                        .unwrap();
                    assert_eq!(lines[0], format!("*{}", keys.len()));
                    assert!(
                        lines[1..].iter().all(|l| l == ":1"),
                        "MQUERY false negative"
                    );
                }
            })
        })
        .collect();
    for t in verifiers {
        t.join().unwrap();
    }

    // Counters: MINSERT recorded 8000 inserts; the pipelined QUERYs and
    // MQUERYs recorded 4 × (8000 + 8000) hits.
    let stats = admin.send("STATS flows").unwrap().join("\n");
    assert!(stats.contains("+inserts=8000"), "stats:\n{stats}");
    assert!(stats.contains("+hits=64000"), "stats:\n{stats}");
    assert!(stats.contains("+misses=0"), "stats:\n{stats}");

    handle.shutdown().unwrap();
}

#[test]
fn snapshot_survives_server_restart() {
    let dir = std::env::temp_dir().join(format!("shbf-server-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("world.snap");
    let snap_str = snap.display().to_string();

    // ---- First server lifetime: build state, snapshot, shut down.
    let (handle, addr) = start_server();
    let mut c = Client::connect(addr).unwrap();
    expect_ok(&mut c, "CREATE flows shbf-m 200000 8 4 7");
    expect_ok(&mut c, "CREATE sizes shbf-x 32768 6 40 7");
    expect_ok(&mut c, "CREATE gw shbf-a 32768 6 7");
    for i in 0..1_000 {
        assert_eq!(
            c.send_expect_one(&format!("INSERT flows key-{i}")).unwrap(),
            "+OK"
        );
    }
    for _ in 0..3 {
        c.send("INSERT sizes hot-flow").unwrap();
    }
    expect_ok(&mut c, "INSERT gw replicated 1");
    expect_ok(&mut c, "INSERT gw replicated 2");
    expect_ok(&mut c, "INSERT gw only-first 1");
    let assoc_before = c.send_expect_one("ASSOC gw replicated").unwrap();
    assert_eq!(c.send_expect_one("QUERY flows key-7").unwrap(), ":1");

    let reply = c.send_expect_one(&format!("SNAPSHOT {snap_str}")).unwrap();
    assert_eq!(reply, "+OK 3 namespaces");
    // SHUTDOWN stops the daemon remotely.
    assert_eq!(c.send_expect_one("SHUTDOWN").unwrap(), "+BYE");
    handle.shutdown().unwrap();

    // ---- Second server lifetime: fresh engine, LOAD, verify everything.
    let (handle2, addr2) = start_server();
    let mut c2 = Client::connect(addr2).unwrap();
    assert!(
        c2.send_expect_one("QUERY flows key-7")
            .unwrap()
            .starts_with("-ERR"),
        "fresh server should not know the namespace"
    );
    let reply = c2.send_expect_one(&format!("LOAD {snap_str}")).unwrap();
    assert_eq!(reply, "+OK 3 namespaces");

    let listing = c2.send("NAMESPACES").unwrap();
    assert_eq!(
        listing,
        vec![
            "*3".to_string(),
            "+flows shbf-m".to_string(),
            "+gw shbf-a".to_string(),
            "+sizes shbf-x".to_string(),
        ]
    );
    for i in 0..1_000 {
        assert_eq!(
            c2.send_expect_one(&format!("QUERY flows key-{i}")).unwrap(),
            ":1",
            "restored server lost key-{i}"
        );
    }
    assert_eq!(c2.send_expect_one("COUNT sizes hot-flow").unwrap(), ":3");
    assert_eq!(
        c2.send_expect_one("ASSOC gw replicated").unwrap(),
        assoc_before,
        "association region changed across restart"
    );
    // Hit/miss counters were persisted and keep counting.
    let stats = c2.send("STATS flows").unwrap().join("\n");
    assert!(stats.contains("+hits=1001"), "stats:\n{stats}");
    // Deletes still work after restore (counting filters survived).
    assert_eq!(c2.send_expect_one("DELETE flows key-0").unwrap(), "+OK");

    handle2.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn protocol_errors_do_not_kill_the_connection() {
    let (handle, addr) = start_server();
    let mut c = Client::connect(addr).unwrap();

    assert!(c
        .send_expect_one("NONSENSE a b")
        .unwrap()
        .starts_with("-ERR"));
    assert!(c
        .send_expect_one("QUERY ghost key")
        .unwrap()
        .starts_with("-ERR"));
    assert!(
        c.send_expect_one("CREATE bad shbf-m 100000 7")
            .unwrap()
            .starts_with("-ERR"),
        "odd k must be rejected"
    );
    // The same connection still serves valid traffic afterwards.
    assert_eq!(c.send_expect_one("PING").unwrap(), "+PONG");
    expect_ok(&mut c, "CREATE ok shbf-m 100000 8");
    expect_ok(&mut c, "INSERT ok 0xdeadbeef");
    assert_eq!(c.send_expect_one("QUERY ok 0xdeadbeef").unwrap(), ":1");
    // Duplicate CREATE is an error; namespace content is untouched.
    assert!(c
        .send_expect_one("CREATE ok shbf-m 100000 8")
        .unwrap()
        .starts_with("-ERR"));
    assert_eq!(c.send_expect_one("QUERY ok 0xdeadbeef").unwrap(), ":1");
    // QUIT closes only this connection; the server stays up.
    assert_eq!(c.send_expect_one("QUIT").unwrap(), "+BYE");
    let mut c2 = Client::connect(addr).unwrap();
    assert_eq!(c2.send_expect_one("QUERY ok 0xdeadbeef").unwrap(), ":1");

    handle.shutdown().unwrap();
}
