//! End-to-end observability tests: a live server scraped over HTTP while
//! clients drive load, a strict validator for the Prometheus text
//! exposition (format 0.0.4), and the `SLOWLOG` / `STATS server` wire
//! commands.

use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use shbf::server::{Client, Engine, Server, ServerConfig, TransportKind};

/// Starts a server with the metrics endpoint on an ephemeral port.
fn start_observable(slowlog_us: u64) -> (shbf::server::ServerHandle, SocketAddr, SocketAddr) {
    let engine = Arc::new(Engine::new());
    let config = ServerConfig {
        transport: TransportKind::Threaded,
        metrics_addr: Some("127.0.0.1:0".into()),
        slowlog_us,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", engine, config).unwrap();
    let metrics_addr = server.metrics_addr().expect("metrics endpoint configured");
    let handle = server.spawn().unwrap();
    let addr = handle.addr();
    assert_eq!(handle.metrics_addr(), Some(metrics_addr));
    (handle, addr, metrics_addr)
}

/// One HTTP/1.0-style scrape: request, full response, split head/body.
fn scrape(metrics_addr: SocketAddr, method: &str, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(metrics_addr).unwrap();
    stream
        .write_all(format!("{method} {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("head/body split");
    (head.to_string(), body.to_string())
}

/// Validates the whole exposition body, strictly:
///
/// * every line is a `# HELP`, `# TYPE`, or a parsable sample;
/// * metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*`;
/// * `# HELP`/`# TYPE` precede all of their family's samples, and appear
///   exactly once per family;
/// * no duplicate series (same name + same label set);
/// * every histogram is cumulative, `+Inf`-terminated, and its `+Inf`
///   bucket equals its `_count`.
fn validate_exposition(body: &str) {
    fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    /// Splits `name{labels} value` (labels optional); returns (name, labels, value).
    fn parse_sample(line: &str) -> (String, String, f64) {
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without value: `{line}`");
        });
        let value: f64 = value.parse().unwrap_or_else(|_| {
            panic!("unparsable sample value in `{line}`");
        });
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let labels = rest.strip_suffix('}').unwrap_or_else(|| {
                    panic!("unterminated label set in `{line}`");
                });
                // Each label is name="value" with any `\` / `"` escaped.
                for label in split_labels(labels) {
                    let (lname, lvalue) = label
                        .split_once('=')
                        .unwrap_or_else(|| panic!("label without `=` in `{line}`"));
                    assert!(valid_name(lname), "bad label name `{lname}` in `{line}`");
                    assert!(
                        lvalue.starts_with('"') && lvalue.ends_with('"') && lvalue.len() >= 2,
                        "unquoted label value in `{line}`"
                    );
                    let inner = &lvalue[1..lvalue.len() - 1];
                    let mut chars = inner.chars();
                    while let Some(c) = chars.next() {
                        match c {
                            '\\' => {
                                let e = chars.next().expect("dangling escape");
                                assert!(
                                    matches!(e, '\\' | '"' | 'n'),
                                    "bad escape `\\{e}` in `{line}`"
                                );
                            }
                            '"' | '\n' => panic!("unescaped `{c}` in `{line}`"),
                            _ => {}
                        }
                    }
                }
                (name.to_string(), labels.to_string())
            }
            None => (series.to_string(), String::new()),
        };
        assert!(valid_name(&name), "bad metric name `{name}` in `{line}`");
        (name, labels, value)
    }
    /// Splits a label body on commas not inside quotes.
    fn split_labels(labels: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut current = String::new();
        let mut in_quotes = false;
        let mut escaped = false;
        for c in labels.chars() {
            if escaped {
                current.push(c);
                escaped = false;
                continue;
            }
            match c {
                '\\' if in_quotes => {
                    current.push(c);
                    escaped = true;
                }
                '"' => {
                    current.push(c);
                    in_quotes = !in_quotes;
                }
                ',' if !in_quotes => out.push(std::mem::take(&mut current)),
                _ => current.push(c),
            }
        }
        if !current.is_empty() {
            out.push(current);
        }
        out
    }
    /// The family a sample belongs to (histogram suffixes fold in).
    fn family_of(name: &str) -> String {
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(stem) = name.strip_suffix(suffix) {
                return stem.to_string();
            }
        }
        name.to_string()
    }

    let mut helped: HashSet<String> = HashSet::new();
    let mut typed: HashMap<String, String> = HashMap::new();
    let mut seen_series: HashSet<String> = HashSet::new();
    // (histogram family, non-le labels) -> ordered (le, cumulative count)
    let mut buckets: HashMap<(String, String), Vec<(f64, f64)>> = HashMap::new();
    let mut counts: HashMap<(String, String), f64> = HashMap::new();

    assert!(!body.is_empty(), "empty exposition");
    assert!(body.ends_with('\n'), "exposition must end with a newline");
    for line in body.lines() {
        assert!(!line.trim().is_empty(), "blank line in exposition");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap();
            assert!(valid_name(name), "bad HELP name `{name}`");
            assert!(helped.insert(name.to_string()), "duplicate HELP for {name}");
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let (name, kind) = (it.next().unwrap(), it.next().unwrap());
            assert!(valid_name(name), "bad TYPE name `{name}`");
            assert!(
                matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ),
                "bad TYPE kind `{kind}` for {name}"
            );
            assert!(
                typed.insert(name.to_string(), kind.to_string()).is_none(),
                "duplicate TYPE for {name}"
            );
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment line `{line}`");

        let (name, labels, value) = parse_sample(line);
        let family = family_of(&name);
        assert!(
            helped.contains(&family) && typed.contains_key(&family),
            "sample `{name}` before its HELP/TYPE"
        );
        assert!(
            seen_series.insert(format!("{name}{{{labels}}}")),
            "duplicate series `{name}{{{labels}}}`"
        );
        if typed.get(&family).map(String::as_str) == Some("histogram") {
            let key_labels: Vec<String> = split_labels(&labels)
                .into_iter()
                .filter(|l| !l.starts_with("le="))
                .collect();
            let key = (family.clone(), key_labels.join(","));
            if name.ends_with("_bucket") {
                let le = split_labels(&labels)
                    .into_iter()
                    .find(|l| l.starts_with("le="))
                    .expect("bucket without le label");
                let le = le.trim_start_matches("le=\"").trim_end_matches('"');
                let le = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().unwrap()
                };
                buckets.entry(key).or_default().push((le, value));
            } else if name.ends_with("_count") {
                counts.insert(key, value);
            }
        } else if !value.is_finite() {
            panic!("non-finite value on non-histogram `{line}`");
        }
    }
    assert!(!buckets.is_empty(), "no histograms in exposition");
    for ((family, labels), series) in &buckets {
        let mut last_le = f64::NEG_INFINITY;
        let mut last_count = -1.0;
        for (le, count) in series {
            assert!(*le > last_le, "{family}{{{labels}}}: le not increasing");
            assert!(
                *count >= last_count,
                "{family}{{{labels}}}: buckets not cumulative"
            );
            last_le = *le;
            last_count = *count;
        }
        let (inf_le, inf_count) = series.last().unwrap();
        assert!(
            inf_le.is_infinite(),
            "{family}{{{labels}}}: missing +Inf terminal bucket"
        );
        let total = counts
            .get(&(family.clone(), labels.clone()))
            .unwrap_or_else(|| panic!("{family}{{{labels}}}: histogram without _count"));
        assert_eq!(
            inf_count, total,
            "{family}{{{labels}}}: +Inf bucket != _count"
        );
    }
}

#[test]
fn scrape_under_pipelined_load_is_valid_and_complete() {
    let (handle, addr, metrics_addr) = start_observable(10_000);

    let mut client = Client::connect(addr).unwrap();
    // One namespace per filter kind; the shbf-x exact table provides
    // ground truth for the observed-FPR series.
    for create in [
        "CREATE flows shbf-m 140000 8",
        "CREATE sizes shbf-x 16384 6",
        "CREATE pairs shbf-a 16384 6",
    ] {
        assert_eq!(client.send_expect_one(create).unwrap(), "+OK");
    }
    let mut batch: Vec<String> = Vec::new();
    for i in 0..500 {
        batch.push(format!("INSERT flows key-{i}"));
    }
    for i in 0..200 {
        batch.push(format!("INSERT sizes item-{i}"));
    }
    for i in 0..500 {
        batch.push(format!("QUERY flows key-{i}"));
    }
    for i in 0..400 {
        // Half of these are absent: exercises the ground-truth negative
        // counter behind shbf_namespace_observed_fpr.
        batch.push(format!("QUERY sizes item-{i}"));
    }
    batch.push("MQUERY flows key-1 key-2 nope-1 nope-2".into());
    let refs: Vec<&str> = batch.iter().map(String::as_str).collect();
    // Scrape concurrently with the pipelined batch: the endpoint must
    // stay consistent while the engine is mutating under it.
    let scraper = std::thread::spawn(move || {
        for _ in 0..5 {
            let (head, body) = scrape(metrics_addr, "GET", "/metrics");
            assert!(head.starts_with("HTTP/1.1 200 OK"));
            validate_exposition(&body);
        }
    });
    let replies = client.send_pipelined(&refs).unwrap();
    assert_eq!(replies.len(), refs.len());
    scraper.join().unwrap();

    let (head, body) = scrape(metrics_addr, "GET", "/metrics");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(
        head.contains("text/plain; version=0.0.4; charset=utf-8"),
        "wrong content type: {head}"
    );
    validate_exposition(&body);

    // The layers all showed up with the expected values.
    for needle in [
        "shbf_commands_total{cmd=\"insert\"} 700",
        "shbf_commands_total{cmd=\"query\"} 900",
        "shbf_commands_total{cmd=\"create\"} 3",
        // Batched commands are timed on every dispatch; single-key
        // QUERY timing is clock-sampled (1/64), so only its total is
        // asserted exactly above.
        "shbf_command_duration_seconds_bucket{cmd=\"mquery\",le=\"+Inf\"} 1",
        "shbf_namespace_inserts_total{ns=\"flows\"} 500",
        "shbf_namespace_hits_total{ns=\"flows\"} 502", // 500 QUERY + 2 MQUERY hits
        "shbf_namespace_estimated_fpr{ns=\"flows\"}",
        "shbf_namespace_observed_fpr{ns=\"sizes\"}",
        "shbf_namespace_groundtruth_negatives_total{ns=\"sizes\"} 200",
        "shbf_namespace_occupancy{ns=\"pairs\"}",
        "shbf_replication_is_replica 0",
        "shbf_transport_bytes_in_total",
        "shbf_build_info{version=",
    ] {
        assert!(body.contains(needle), "missing `{needle}` in:\n{body}");
    }
    // No WAL configured: WAL families stay absent rather than lying with
    // zeros.
    assert!(!body.contains("shbf_wal_"));

    // Routing.
    let (head404, _) = scrape(metrics_addr, "GET", "/other");
    assert!(head404.starts_with("HTTP/1.1 404"), "{head404}");
    let (head405, _) = scrape(metrics_addr, "POST", "/metrics");
    assert!(head405.starts_with("HTTP/1.1 405"), "{head405}");

    drop(client);
    handle.shutdown().unwrap();
    // The metrics listener is torn down with the server.
    assert!(
        TcpStream::connect(metrics_addr).is_err() || {
            // Accept may still race briefly; a scrape must fail.
            let mut s = TcpStream::connect(metrics_addr).unwrap();
            s.write_all(b"GET /metrics HTTP/1.1\r\n\r\n").unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap_or(0);
            out.is_empty()
        }
    );
}

#[test]
fn wal_metrics_families_appear_with_wal_enabled() {
    let dir = std::env::temp_dir().join(format!(
        "shbf-metrics-wal-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let engine = Arc::new(Engine::new());
    let config = ServerConfig {
        metrics_addr: Some("127.0.0.1:0".into()),
        wal_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", engine, config).unwrap();
    let metrics_addr = server.metrics_addr().unwrap();
    let handle = server.spawn().unwrap();

    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(
        client.send_expect_one("CREATE w shbf-m 65536 8").unwrap(),
        "+OK"
    );
    for i in 0..50 {
        client
            .send_expect_one(&format!("INSERT w key-{i}"))
            .unwrap();
    }
    let (head, body) = scrape(metrics_addr, "GET", "/metrics");
    assert!(head.starts_with("HTTP/1.1 200 OK"));
    validate_exposition(&body);
    for needle in [
        "shbf_wal_append_duration_seconds_count 51", // CREATE + 50 INSERTs
        "shbf_wal_fsync_duration_seconds_bucket",
        "shbf_wal_segments 1",
        "shbf_wal_last_seq 51",
        "shbf_snapshots_total 0",
    ] {
        assert!(body.contains(needle), "missing `{needle}` in:\n{body}");
    }
    drop(client);
    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn slowlog_round_trip_over_the_wire() {
    // 1µs threshold: trivial commands may or may not qualify, but a
    // 4000-key MINSERT is reliably over it.
    let (handle, addr, _metrics) = start_observable(1);
    let mut client = Client::connect(addr).unwrap();

    let len = client.send_expect_one("SLOWLOG LEN").unwrap();
    len.trim_start_matches(':')
        .parse::<u64>()
        .expect("LEN is an integer");

    assert_eq!(
        client.send_expect_one("CREATE s shbf-m 262144 8").unwrap(),
        "+OK"
    );
    let minsert = format!(
        "MINSERT s {}",
        (0..4000)
            .map(|i| format!("super-secret-key-{i}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    let reply = client.send_expect_one(&minsert).unwrap();
    assert_eq!(reply, ":4000");

    let lines = client.send("SLOWLOG GET 10").unwrap();
    assert!(lines[0].starts_with('*'), "{lines:?}");
    assert!(
        lines.len() >= 2,
        "MINSERT should have been logged: {lines:?}"
    );
    // Entries are `id unix_ts duration_us trace=<hex|-> parse=<µs|->
    // engine=<µs|-> wal=<µs|-> write=<µs|-> summary`, newest first; the
    // MINSERT is the newest (the GET logs itself only after rendering).
    let newest = &lines[1];
    let fields: Vec<&str> = newest.trim_start_matches('+').splitn(9, ' ').collect();
    assert_eq!(fields.len(), 9, "entry shape: {newest}");
    fields[0].parse::<u64>().expect("id");
    fields[1].parse::<u64>().expect("unix ts");
    let took_us: u64 = fields[2].parse().expect("duration µs");
    assert!(took_us >= 1);
    // Tracing is off on this server, so the trace id and every phase
    // column render as `-`.
    assert_eq!(fields[3], "trace=-", "trace column: {newest}");
    for (i, phase) in ["parse=-", "engine=-", "wal=-", "write=-"]
        .iter()
        .enumerate()
    {
        assert_eq!(&fields[4 + i], phase, "phase column: {newest}");
    }
    assert_eq!(fields[8], "MINSERT s (4000 keys)", "summary: {newest}");
    // Summaries carry counts, never key bytes.
    assert!(
        !lines.iter().any(|l| l.contains("super-secret-key")),
        "slowlog leaked key bytes: {lines:?}"
    );

    assert_eq!(client.send_expect_one("SLOWLOG RESET").unwrap(), "+OK");
    let len = client.send_expect_one("SLOWLOG LEN").unwrap();
    let n: u64 = len.trim_start_matches(':').parse().unwrap();
    assert!(n <= 2, "ring should be nearly empty after RESET, got {n}");

    drop(client);
    handle.shutdown().unwrap();
}

#[test]
fn stats_server_section_and_reserved_name() {
    let (handle, addr, _metrics) = start_observable(10_000);
    let mut client = Client::connect(addr).unwrap();

    assert_eq!(client.send_expect_one("PING").unwrap(), "+PONG");
    let lines = client.send("STATS server").unwrap();
    assert!(lines[0].starts_with('*'), "{lines:?}");
    let kv: HashMap<String, String> = lines[1..]
        .iter()
        .filter_map(|l| {
            l.trim_start_matches('+')
                .split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
        })
        .collect();
    assert_eq!(
        kv.get("version").map(String::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert!(kv.contains_key("pid"), "{kv:?}");
    assert!(kv.contains_key("uptime_secs"), "{kv:?}");
    let ping_total: u64 = kv["cmd_other"].parse().unwrap();
    assert!(ping_total >= 1, "PING should count under cmd_other: {kv:?}");
    let total: u64 = kv["commands_total"].parse().unwrap();
    assert!(total >= 1, "{kv:?}");

    // `server` is reserved: CREATE must refuse it like the other STATS
    // subjects.
    let err = client
        .send_expect_one("CREATE server shbf-m 65536 8")
        .unwrap();
    assert!(err.starts_with("-ERR"), "{err}");
    assert!(err.contains("reserved"), "{err}");

    drop(client);
    handle.shutdown().unwrap();
}
