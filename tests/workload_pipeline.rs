//! End-to-end pipeline tests: synthetic trace → filters → queries, spanning
//! the workloads, core, and baselines crates the way the examples (and the
//! paper's evaluation) wire them together.

use shbf::core::{CShbfM, CShbfX, ShbfM, ShbfX};
use shbf::workloads::multiset::{CountDistribution, MultisetWorkload};
use shbf::workloads::queries::{membership_mix, negatives_for};
use shbf::workloads::{SyntheticTrace, TraceConfig};

fn small_trace(seed: u64) -> SyntheticTrace {
    SyntheticTrace::generate(&TraceConfig {
        distinct_flows: 5_000,
        total_packets: 25_000,
        zipf_theta: 0.9,
        seed,
    })
}

#[test]
fn trace_to_membership_filter() {
    let trace = small_trace(1);
    let mut filter = ShbfM::new(trace.flows.len() * 14, 8, 7).unwrap();
    for f in &trace.flows {
        filter.insert(&f.to_bytes());
    }
    // Every packet's flow must be found (packets reference inserted flows).
    for p in &trace.packets {
        assert!(filter.contains(&p.to_bytes()));
    }
    // Non-member FPR must be tiny at 14 bits/flow.
    let absent = negatives_for(&trace.flows, 50_000, 0x11);
    let fp = absent
        .iter()
        .filter(|f| filter.contains(&f.to_bytes()))
        .count();
    assert!((fp as f64 / absent.len() as f64) < 0.002);
}

#[test]
fn trace_to_flow_counter_with_cap() {
    let trace = small_trace(2);
    const CAP: usize = 57;
    let mut counter = CShbfX::new(trace.flows.len() * 18, 8, CAP, 3).unwrap();
    for p in &trace.packets {
        // Flows past the cap are rejected — callers decide the policy.
        let _ = counter.insert(&p.to_bytes());
    }
    let mut under = 0;
    for (flow, count) in trace.flow_counts() {
        let capped = count.min(CAP as u64);
        let reported = counter.query(&flow.to_bytes()).reported;
        if reported < capped {
            under += 1;
        }
    }
    assert_eq!(under, 0, "exact-table CShBF_X must never under-report");
    assert_eq!(counter.check_sync(), 0);
}

#[test]
fn membership_mix_has_expected_composition() {
    let trace = small_trace(3);
    let mix = membership_mix(&trace.flows, 0x33);
    assert_eq!(mix.len(), 2 * trace.flows.len());
    let mut filter = ShbfM::new(trace.flows.len() * 14, 8, 5).unwrap();
    for f in &trace.flows {
        filter.insert(&f.to_bytes());
    }
    let mut true_pos = 0;
    let mut false_neg = 0;
    for q in &mix {
        let answer = filter.contains(&q.flow.to_bytes());
        if q.is_member {
            if answer {
                true_pos += 1;
            } else {
                false_neg += 1;
            }
        }
    }
    assert_eq!(false_neg, 0);
    assert_eq!(true_pos, trace.flows.len());
}

#[test]
fn trace_file_feeds_identical_filters() {
    let trace = small_trace(4);
    let dir = std::env::temp_dir().join("shbf-pipeline-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pipeline.trace");
    trace.write_file(&path).unwrap();
    let loaded = SyntheticTrace::read_file(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let mut a = ShbfM::new(80_000, 8, 9).unwrap();
    let mut b = ShbfM::new(80_000, 8, 9).unwrap();
    for f in &trace.flows {
        a.insert(&f.to_bytes());
    }
    for f in &loaded.flows {
        b.insert(&f.to_bytes());
    }
    // Identical input + identical seed ⇒ identical serialized state.
    assert_eq!(a.to_bytes(), b.to_bytes());
}

#[test]
fn static_and_dynamic_multiplicity_agree() {
    // Build ShbfX from final counts; build CShbfX by replaying the packet
    // stream. Same parameters ⇒ the bit arrays encode the same state.
    let workload = MultisetWorkload::generate(2000, 30, CountDistribution::Zipf(0.8), 5);
    let counts = workload.byte_counts();
    let m = 60_000usize;
    let (k, c, seed) = (8usize, 30usize, 21u64);

    let static_f = ShbfX::build(&counts, m, k, c, seed).unwrap();
    let mut dynamic_f = CShbfX::new(m, k, c, seed).unwrap();
    for packet in workload.packet_stream(6) {
        dynamic_f.insert(&packet.to_bytes()).unwrap();
    }
    for (key, _) in &counts {
        assert_eq!(
            static_f.query(key),
            dynamic_f.query(key),
            "static and replayed filters disagree"
        );
    }
}

#[test]
fn dedup_counts_distinct_flows() {
    // The packet_dedup example's core logic as a test.
    let trace = small_trace(6);
    let mut seen = CShbfM::new(trace.flows.len() * 14, 8, 77).unwrap();
    let mut admitted = 0usize;
    for p in &trace.packets {
        let key = p.to_bytes();
        if !seen.contains(&key) {
            seen.insert(&key);
            admitted += 1;
        }
    }
    // FPs only ever reduce the admitted count, never increase it.
    assert!(admitted <= trace.flows.len());
    let miss_rate = (trace.flows.len() - admitted) as f64 / trace.flows.len() as f64;
    assert!(miss_rate < 0.005, "distinct-count miss rate {miss_rate:.5}");
}
