//! Failpoint-driven chaos suite: the five headline fault scenarios from
//! the hardening work, each run against real in-process servers over TCP
//! loopback and each asserting the same recovery invariant — **acked
//! writes survive, replicas converge byte-identically, and the server
//! keeps serving reads** while the fault is live.
//!
//! | scenario | injected fault | site |
//! |---|---|---|
//! | disk-full rotation | segment rotation fails at snapshot time | `wal::rotate` |
//! | torn snapshot rename | atomic rename fails after tmp write | `snapshot::rename` |
//! | stalled replication link | primary errors every `PULLOPS` | `engine::pullops` |
//! | fsync error storm | every WAL fsync fails | `wal::fsync` |
//! | idle-conn flood | none — deadline/shedding handles it | — |
//!
//! The failpoint registry is process-global, so every test serializes on
//! one mutex and clears all sites on entry and exit (including panic
//! exits — the guard's `Drop` does the clearing).

use std::io::Read;
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use shbf::server::{snapshot, Client, Engine, FsyncPolicy, Server, ServerConfig, ServerHandle};
use shbf_failpoint as failpoint;

/// Serializes chaos tests: failpoints are process-global state.
static CHAOS: Mutex<()> = Mutex::new(());

/// Holds the chaos lock for one test and guarantees a clean registry on
/// both entry and exit, even when the test panics.
struct FaultSession(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for FaultSession {
    fn drop(&mut self) {
        failpoint::clear_all();
    }
}

fn fault_session() -> FaultSession {
    let guard = CHAOS.lock().unwrap_or_else(|poison| poison.into_inner());
    failpoint::clear_all();
    FaultSession(guard)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "shbf-chaos-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(engine: Arc<Engine>, config: ServerConfig) -> (ServerHandle, SocketAddr) {
    let server = Server::bind("127.0.0.1:0", engine, config).unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();
    (handle, addr)
}

fn wal_config(dir: &Path, snapshot_every_ops: u64, fsync: FsyncPolicy) -> ServerConfig {
    ServerConfig {
        wal_dir: Some(dir.to_path_buf()),
        fsync,
        snapshot_every_ops,
        ..ServerConfig::default()
    }
}

fn expect_ok(client: &mut Client, command: &str) {
    let reply = client.send_expect_one(command).unwrap();
    assert!(
        reply.starts_with("+OK") || reply.starts_with(':'),
        "`{command}` replied `{reply}`"
    );
}

fn expect_err_containing(client: &mut Client, command: &str, needle: &str) {
    let reply = client.send_expect_one(command).unwrap();
    assert!(
        reply.starts_with('-') && reply.contains(needle),
        "`{command}` replied `{reply}`, expected an error mentioning `{needle}`"
    );
}

fn query_hit(client: &mut Client, ns: &str, key: &str) -> bool {
    match client
        .send_expect_one(&format!("QUERY {ns} {key}"))
        .unwrap()
        .as_str()
    {
        ":1" => true,
        ":0" => false,
        other => panic!("QUERY replied `{other}`"),
    }
}

/// One `k=v` field out of a `STATS <section>` array reply.
fn stats_field(client: &mut Client, section: &str, key: &str) -> Option<String> {
    let lines = client.send(&format!("STATS {section}")).unwrap();
    lines.iter().find_map(|l| {
        l.strip_prefix('+')?
            .strip_prefix(key)?
            .strip_prefix('=')
            .map(str::to_string)
    })
}

/// Scenario 1 — disk full at a segment rotation. The snapshot path
/// rotates the log; with `wal::rotate` failing, the triggering mutation
/// must come back as an error, the server must latch read-only (no
/// silently diverging acks), reads must keep serving, and a restart on
/// the same directory must reproduce every acked write.
#[test]
fn disk_full_rotation_latches_read_only_and_acked_writes_survive() {
    let _session = fault_session();
    let dir = temp_dir("rotate");
    let engine = Arc::new(Engine::new());
    // Op 5 (create + 4 inserts) crosses the snapshot threshold.
    let (handle, addr) = start(engine, wal_config(&dir, 5, FsyncPolicy::No));
    let mut client = Client::connect(addr).unwrap();

    expect_ok(&mut client, "CREATE flows shbf-m 20000 8 2 7");
    for i in 0..3 {
        expect_ok(&mut client, &format!("INSERT flows acked-{i}"));
    }

    failpoint::set("wal::rotate", failpoint::Action::Return("disk full".into()));
    expect_err_containing(&mut client, "INSERT flows victim", "now read only");

    // Degraded but alive: reads serve, further mutations are refused.
    for i in 0..3 {
        assert!(query_hit(&mut client, "flows", &format!("acked-{i}")));
    }
    expect_err_containing(&mut client, "INSERT flows late", "read only");
    assert_eq!(
        stats_field(&mut client, "server", "read_only").as_deref(),
        Some("1")
    );
    drop(client);
    handle.shutdown().unwrap();

    // Disk "fixed": restart on the same directory.
    failpoint::clear_all();
    let engine = Arc::new(Engine::new());
    let (handle, addr) = start(engine, wal_config(&dir, 5, FsyncPolicy::No));
    let mut client = Client::connect(addr).unwrap();
    for i in 0..3 {
        assert!(
            query_hit(&mut client, "flows", &format!("acked-{i}")),
            "acked write acked-{i} lost across the disk-full crash"
        );
    }
    expect_ok(&mut client, "INSERT flows after-recovery");
    handle.shutdown().unwrap();
}

/// Scenario 2 — torn snapshot: the tmp file is written and fsynced but
/// the atomic rename fails. No state file lands, so recovery must come
/// entirely from the (longer) log tail — and must not trip over the
/// leftover tmp file.
#[test]
fn torn_snapshot_rename_recovers_from_the_log_tail() {
    let _session = fault_session();
    let dir = temp_dir("rename");
    let engine = Arc::new(Engine::new());
    let (handle, addr) = start(engine, wal_config(&dir, 5, FsyncPolicy::No));
    let mut client = Client::connect(addr).unwrap();

    expect_ok(&mut client, "CREATE flows shbf-m 20000 8 2 7");
    for i in 0..3 {
        expect_ok(&mut client, &format!("INSERT flows acked-{i}"));
    }

    failpoint::set(
        "snapshot::rename",
        failpoint::Action::Return("injected torn rename".into()),
    );
    // The append itself succeeds; the snapshot behind it fails, so the
    // reply must be an error and the server must stop acking mutations.
    expect_err_containing(&mut client, "INSERT flows victim", "now read only");
    assert!(
        query_hit(&mut client, "flows", "acked-0"),
        "reads must survive"
    );
    drop(client);
    handle.shutdown().unwrap();

    failpoint::clear_all();
    let engine = Arc::new(Engine::new());
    let (handle, addr) = start(engine, wal_config(&dir, 5, FsyncPolicy::No));
    let mut client = Client::connect(addr).unwrap();
    for i in 0..3 {
        assert!(
            query_hit(&mut client, "flows", &format!("acked-{i}")),
            "acked write acked-{i} lost to the torn snapshot"
        );
    }
    // Writability is restored, and the next snapshot (no failpoint now)
    // must go through cleanly.
    for i in 0..6 {
        expect_ok(&mut client, &format!("INSERT flows post-{i}"));
    }
    handle.shutdown().unwrap();
}

/// Scenario 3 — the replication link stalls: the primary errors every
/// `PULLOPS`. The replica must keep reconnecting under backoff (counted
/// in its metrics), and once the link heals it must converge to a
/// **byte-identical** registry.
#[test]
fn stalled_replication_link_backs_off_then_converges_byte_identically() {
    let _session = fault_session();
    let dir = temp_dir("repl");
    let primary_engine = Arc::new(Engine::new());
    let (primary_handle, primary_addr) = start(
        Arc::clone(&primary_engine),
        wal_config(&dir, 1_000_000, FsyncPolicy::No),
    );
    let mut primary = Client::connect(primary_addr).unwrap();

    expect_ok(&mut primary, "CREATE flows shbf-m 60000 8 2 7");
    for i in 0..50 {
        expect_ok(&mut primary, &format!("INSERT flows pre-{i}"));
    }

    // Stall the tail path before the replica ever attaches: full-sync
    // succeeds, then every PULLOPS round fails.
    failpoint::set(
        "engine::pullops",
        failpoint::Action::Return("injected link stall".into()),
    );
    let replica_engine = Arc::new(Engine::new());
    let (replica_handle, replica_addr) = start(
        Arc::clone(&replica_engine),
        ServerConfig {
            replica_of: Some(primary_addr.to_string()),
            ..ServerConfig::default()
        },
    );
    let mut replica = Client::connect(replica_addr).unwrap();

    // Writes keep landing on the primary while the link is down.
    for i in 0..20 {
        expect_ok(&mut primary, &format!("INSERT flows during-{i}"));
    }

    // The applier must cycle: reconnect counter advances and the backoff
    // gauge shows a nonzero delay.
    let deadline = Instant::now() + Duration::from_secs(15);
    while replica_engine.metrics().replica_reconnects.get() < 2 {
        assert!(
            Instant::now() < deadline,
            "replica applier never cycled under the stalled link"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        replica_engine.metrics().replica_backoff_ms.get() > 0.0,
        "backoff gauge never stamped"
    );

    // Heal the link; the replica must catch all the way up.
    failpoint::clear_all();
    let target: u64 = stats_field(&mut primary, "replication", "last_seq")
        .expect("primary reports last_seq")
        .parse()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let applied: u64 = stats_field(&mut replica, "replication", "applied_seq")
            .expect("replica reports applied_seq")
            .parse()
            .unwrap();
        if applied >= target {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replica stuck at applied_seq={applied} (target {target})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        snapshot::to_bytes(primary_engine.registry()),
        snapshot::to_bytes(replica_engine.registry()),
        "replica converged to a different registry than the primary"
    );
    assert!(query_hit(&mut replica, "flows", "during-19"));

    replica_handle.shutdown().unwrap();
    primary_handle.shutdown().unwrap();
}

/// Scenario 4 — fsync error storm, driven entirely over the wire via the
/// `FAILPOINT` admin verb (`--failpoints-admin`). With `fsync always`,
/// the first faulted append latches read-only; reads keep serving, the
/// latch outlives clearing the failpoint, and a restart restores both
/// the acked writes and writability.
#[test]
fn fsync_error_storm_keeps_reads_serving_and_survives_restart() {
    let _session = fault_session();
    let dir = temp_dir("fsync");
    let engine = Arc::new(Engine::new());
    let config = ServerConfig {
        failpoints_admin: true,
        ..wal_config(&dir, 1_000_000, FsyncPolicy::Always)
    };
    let (handle, addr) = start(engine, config);
    let mut client = Client::connect(addr).unwrap();

    expect_ok(&mut client, "CREATE flows shbf-m 20000 8 2 7");
    expect_ok(&mut client, "INSERT flows acked-0");
    expect_ok(&mut client, "INSERT flows acked-1");

    expect_ok(&mut client, "FAILPOINT SET wal::fsync return(injected EIO)");
    expect_err_containing(&mut client, "INSERT flows victim", "now read only");
    assert_eq!(
        stats_field(&mut client, "server", "read_only").as_deref(),
        Some("1")
    );
    let io_errors: u64 = stats_field(&mut client, "server", "wal_io_errors")
        .unwrap()
        .parse()
        .unwrap();
    assert!(io_errors >= 1, "wal_io_errors counter never advanced");

    // The wire admin sees its own site, with a recorded trigger.
    let listed = client.send("FAILPOINT LIST").unwrap().join("\n");
    assert!(
        listed.contains("wal::fsync=return(injected EIO)"),
        "FAILPOINT LIST missing the armed site: {listed}"
    );

    // Reads serve through the storm; the latch outlives the failpoint.
    assert!(query_hit(&mut client, "flows", "acked-0"));
    assert!(query_hit(&mut client, "flows", "acked-1"));
    expect_ok(&mut client, "FAILPOINT CLEAR wal::fsync");
    expect_err_containing(&mut client, "INSERT flows late", "read only");
    drop(client);
    handle.shutdown().unwrap();

    let engine = Arc::new(Engine::new());
    let (handle, addr) = start(engine, wal_config(&dir, 1_000_000, FsyncPolicy::Always));
    let mut client = Client::connect(addr).unwrap();
    assert!(query_hit(&mut client, "flows", "acked-0"));
    assert!(query_hit(&mut client, "flows", "acked-1"));
    expect_ok(&mut client, "INSERT flows after-recovery");
    handle.shutdown().unwrap();
}

/// Scenario 5 — a flood of silent connections. With `conn_idle_secs` and
/// `shed_busy` set, connections over the cap get an immediate
/// `-ERR busy` (not an unbounded queue), silent connections are reaped
/// at the idle deadline, and a well-behaved client is never locked out
/// for more than the deadline.
#[test]
fn idle_connection_flood_is_reaped_and_overflow_is_shed() {
    let _session = fault_session();
    let engine = Arc::new(Engine::new());
    let (handle, addr) = start(
        engine,
        ServerConfig {
            max_connections: 2,
            conn_idle_secs: 1,
            shed_busy: true,
            ..ServerConfig::default()
        },
    );

    // Two silent connections fill every slot.
    let idle: Vec<TcpStream> = (0..2)
        .map(|_| {
            let s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s
        })
        .collect();
    // Let the acceptor register them before the overflow connect.
    std::thread::sleep(Duration::from_millis(200));

    // The overflow connection is shed with a busy error, then closed.
    let mut over = TcpStream::connect(addr).unwrap();
    over.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reply = Vec::new();
    over.read_to_end(&mut reply).unwrap();
    assert_eq!(
        reply,
        b"-ERR busy\r\n",
        "overflow connection got {:?}",
        String::from_utf8_lossy(&reply)
    );

    // The idle flood is reaped at the deadline: both sockets see EOF.
    for mut conn in idle {
        let mut buf = Vec::new();
        conn.read_to_end(&mut buf)
            .expect("reaped connection should close cleanly, not time out");
        assert!(buf.is_empty(), "idle connection was sent {buf:?}");
    }

    // With the deadwood cleared, a real client gets a slot and service.
    let mut client = Client::connect(addr).unwrap();
    let pong = client.send_expect_one("PING").unwrap();
    assert_eq!(pong, "+PONG");
    // Fault injection is locked unless explicitly enabled.
    expect_err_containing(&mut client, "FAILPOINT LIST", "failpoint admin disabled");
    drop(client);
    handle.shutdown().unwrap();
}

/// The client-side retry helper refuses to replay mutations — a lost
/// reply is not a lost write — while idempotent reads ride through a
/// server restart on the same port.
#[test]
fn call_with_retry_is_idempotent_only_and_rides_out_a_restart() {
    let _session = fault_session();
    let engine = Arc::new(Engine::new());
    let (handle, addr) = start(engine, ServerConfig::default());
    let mut client = Client::connect(addr).unwrap();
    expect_ok(&mut client, "CREATE flows shbf-m 20000 8 2 7");
    expect_ok(&mut client, "INSERT flows k");

    let err = client
        .call_with_retry("INSERT flows again", 3, Duration::from_millis(10))
        .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);

    // Kill the server under the client, restart on the same address; the
    // retry loop must reconnect and answer the read.
    handle.shutdown().unwrap();
    let engine = Arc::new(Engine::new());
    let restarted = Server::bind(addr, engine, ServerConfig::default()).unwrap();
    let handle = restarted.spawn().unwrap();
    let lines = client
        .call_with_retry("PING", 5, Duration::from_millis(50))
        .expect("retry loop should reconnect to the restarted server");
    assert_eq!(lines, vec!["+PONG".to_string()]);
    handle.shutdown().unwrap();
}
