//! Integration tests for the concurrent crate through the facade: the
//! lock-free filter must agree with the sequential reference, and the
//! diagnostics module must assess filters consistently across crates.

use std::sync::Arc;

use shbf::concurrent::{ConcurrentShbfM, ShardedCShbfM};
use shbf::core::diagnostics::inspect_shbf_m;
use shbf::core::ShbfM;
use shbf::workloads::sets::distinct_flows;

#[test]
fn lock_free_filter_agrees_with_sequential_reference() {
    let flows = distinct_flows(5000, 3);
    let m = 70_000;
    let concurrent = Arc::new(ConcurrentShbfM::new(m, 8, 0xACE).unwrap());
    let mut sequential = ShbfM::new(m, 8, 0xACE).unwrap();

    // Parallel inserts into the concurrent filter; serial into the reference.
    crossbeam_scope(&flows, &concurrent);
    for f in &flows {
        sequential.insert(&f.to_bytes());
    }

    // Same parameters + same seed ⇒ identical bit addressing ⇒ identical
    // answers on both members and probes.
    let probes = distinct_flows(20_000, 99);
    for f in flows.iter().chain(probes.iter()) {
        assert_eq!(
            concurrent.contains(&f.to_bytes()),
            sequential.contains(&f.to_bytes())
        );
    }
}

fn crossbeam_scope(flows: &[shbf::workloads::FlowId], filter: &Arc<ConcurrentShbfM>) {
    let chunks: Vec<&[shbf::workloads::FlowId]> = flows.chunks(flows.len() / 4 + 1).collect();
    std::thread::scope(|scope| {
        for chunk in chunks {
            let filter = Arc::clone(filter);
            scope.spawn(move || {
                for f in chunk {
                    filter.insert(&f.to_bytes());
                }
            });
        }
    });
}

#[test]
fn sharded_filter_survives_parallel_churn_without_false_negatives() {
    let filter = Arc::new(ShardedCShbfM::new(400_000, 8, 8, 0xD1CE).unwrap());
    let flows = distinct_flows(20_000, 7);

    std::thread::scope(|scope| {
        // Writers insert disjoint quarters; a reader hammers membership.
        for chunk in flows.chunks(5000) {
            let filter = Arc::clone(&filter);
            scope.spawn(move || {
                for f in chunk {
                    filter.insert(&f.to_bytes());
                }
            });
        }
    });
    for f in &flows {
        assert!(filter.contains(&f.to_bytes()));
    }
    assert_eq!(filter.items(), 20_000);
    assert!(filter.shard_imbalance() < 0.2);
}

#[test]
fn diagnostics_flag_overload_before_fpr_explodes() {
    let mut f = ShbfM::new(20_000, 8, 0xFACE).unwrap();
    let budget = 1e-3;
    let mut first_unhealthy = None;
    for (i, flow) in distinct_flows(4000, 11).iter().enumerate() {
        f.insert(&flow.to_bytes());
        if first_unhealthy.is_none() && !inspect_shbf_m(&f, budget).healthy() {
            first_unhealthy = Some(i + 1);
        }
    }
    // The filter must be flagged before it is grossly overloaded: Theorem 1
    // puts the 1e-3 capacity of m = 20k, k = 8 at about n ≈ 1350.
    let flagged_at = first_unhealthy.expect("overload never flagged");
    assert!(
        (1200..1600).contains(&flagged_at),
        "flagged at {flagged_at}, expected near the Theorem-1 capacity"
    );
}
