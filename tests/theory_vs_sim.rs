//! The paper's validation methodology as an integration test: for each of
//! the three query types, the measured accuracy must match the analytical
//! model within the tolerances §6 reports (ShBF_M: relative error ≤ 3% at
//! paper scale; association clear-answer: average relative error ≤ 1%;
//! multiplicity CR: ≤ 1%). Probe counts here are chosen so the statistical
//! noise floor sits below the asserted band.

use shbf::analysis::{assoc, bf, mult, shbf as shbf_theory};
use shbf::baselines::{Bf, Ibf, OneMemBf};
use shbf::core::GenShbfM;
use shbf::core::{ShbfA, ShbfM, ShbfX};
use shbf::workloads::queries::{association_mix, negatives_for};
use shbf::workloads::sets::{distinct_flows, AssociationPair};
use shbf::workloads::stats::relative_error;

#[test]
fn shbf_m_fpr_matches_theorem_1() {
    // Fig. 7(b) point: m = 22976, n = 2000, k = 8. Theory ≈ 4e-3, so 1M
    // probes put the 1σ Poisson noise at ~1.6%.
    let (m, k, n) = (22_976usize, 8usize, 2000usize);
    let flows = distinct_flows(n, 0xA11CE);
    let mut filter = ShbfM::new(m, k, 0xA11CE).unwrap();
    for f in &flows {
        filter.insert(&f.to_bytes());
    }
    let probes = negatives_for(&flows, 1_000_000, 0xF00);
    let fp = probes
        .iter()
        .filter(|p| filter.contains(&p.to_bytes()))
        .count();
    let measured = fp as f64 / probes.len() as f64;
    let theory = shbf_theory::fpr(m as f64, n as f64, k as f64, 57.0);
    let rel = relative_error(measured, theory);
    assert!(
        rel < 0.06,
        "ShBF_M: measured {measured:.6} vs theory {theory:.6} (rel {rel:.4})"
    );
}

#[test]
fn bf_fpr_matches_bloom_formula() {
    let (m, k, n) = (22_976usize, 8usize, 2000usize);
    let flows = distinct_flows(n, 0xB0B);
    let mut filter = Bf::new(m, k, 0xB0B).unwrap();
    for f in &flows {
        filter.insert(&f.to_bytes());
    }
    let probes = negatives_for(&flows, 1_000_000, 0xF01);
    let fp = probes
        .iter()
        .filter(|p| filter.contains(&p.to_bytes()))
        .count();
    let measured = fp as f64 / probes.len() as f64;
    let theory = bf::fpr(m as f64, n as f64, k as f64);
    assert!(
        relative_error(measured, theory) < 0.06,
        "BF: measured {measured:.6} vs theory {theory:.6}"
    );
}

#[test]
fn shbf_m_and_bf_fprs_are_close_and_onemem_is_worse() {
    // The Fig. 7 ordering: ShBF_M ≈ BF << 1MemBF at equal memory.
    let (m, k, n) = (22_008usize, 8usize, 1500usize);
    let flows = distinct_flows(n, 0xCAFE);
    let mut shbf_f = ShbfM::new(m, k, 0xCAFE).unwrap();
    let mut bf_f = Bf::new(m, k, 0xCAFE).unwrap();
    let mut one_f = OneMemBf::new(m, k, 0xCAFE).unwrap();
    for f in &flows {
        let key = f.to_bytes();
        shbf_f.insert(&key);
        bf_f.insert(&key);
        one_f.insert(&key);
    }
    let probes = negatives_for(&flows, 500_000, 0xF02);
    let count = |pred: &dyn Fn(&[u8]) -> bool| {
        probes.iter().filter(|p| pred(&p.to_bytes())).count() as f64 / probes.len() as f64
    };
    let f_shbf = count(&|p| shbf_f.contains(p));
    let f_bf = count(&|p| bf_f.contains(p));
    let f_one = count(&|p| one_f.contains(p));
    // Theory puts ShBF_M ~6% above BF here; two noisy measurements at
    // ~450 expected FPs each (±5% at 1σ) justify a [0.75, 1.4] ratio band.
    let ratio = f_shbf / f_bf;
    assert!(
        (0.75..1.4).contains(&ratio),
        "ShBF {f_shbf:.6} vs BF {f_bf:.6}: ratio {ratio:.3}"
    );
    assert!(
        f_one > 3.0 * f_shbf,
        "1MemBF {f_one:.6} should be several times ShBF {f_shbf:.6} (paper: 5-10x)"
    );
}

#[test]
fn association_clear_rate_matches_eq25_and_table2() {
    // Fig. 10(a) at k = 10: clear rates 0.998 (ShBF_A) and 0.666 (iBF).
    let n = 30_000usize;
    let pair = AssociationPair::generate(n, n, n / 4, 0xD00D);
    let s1 = pair.s1_bytes();
    let s2 = pair.s2_bytes();
    let k = 10usize;
    let shbf_a = ShbfA::builder().hashes(k).seed(3).build(&s1, &s2).unwrap();
    let ibf = Ibf::build_optimal(&s1, &s2, k, 3).unwrap();

    let queries = association_mix(&pair, 40_000, 0xF03);
    let mut clear_shbf = 0usize;
    let mut clear_ibf = 0usize;
    for q in &queries {
        let key = q.flow.to_bytes();
        if shbf_a.query(&key).is_clear() {
            clear_shbf += 1;
        }
        if ibf.query(&key).is_clear() {
            clear_ibf += 1;
        }
    }
    let rate_shbf = clear_shbf as f64 / queries.len() as f64;
    let rate_ibf = clear_ibf as f64 / queries.len() as f64;
    let theory_shbf = assoc::p_clear_shbf(k as f64);
    let theory_ibf = assoc::p_clear_ibf(k as f64);
    assert!(
        relative_error(rate_shbf, theory_shbf) < 0.01,
        "ShBF_A clear {rate_shbf:.4} vs theory {theory_shbf:.4}"
    );
    assert!(
        relative_error(rate_ibf, theory_ibf) < 0.03,
        "iBF clear {rate_ibf:.4} vs theory {theory_ibf:.4}"
    );
    // §1.3: "1.47 times higher probability of a clear answer".
    let gain = rate_shbf / rate_ibf;
    assert!(gain > 1.35 && gain < 1.6, "clear-answer gain {gain:.3}");
}

#[test]
fn multiplicity_correctness_matches_eq27_eq28() {
    // Fig. 11(a) regime: c = 57, uniform multiplicities, memory 1.5x nk/ln2.
    let n = 20_000usize;
    let k = 12usize;
    let c = 57usize;
    let bits = mult::fig11_bits(n as f64, k as f64) as usize;
    let counted: Vec<([u8; 13], u64)> = distinct_flows(n, 0xE66)
        .iter()
        .enumerate()
        .map(|(i, f)| (f.to_bytes(), (i as u64 % c as u64) + 1))
        .collect();
    let filter = ShbfX::build(&counted, bits, k, c, 0xE66).unwrap();

    // Present elements: Eq. 28 averaged over uniform multiplicities.
    let exact = counted
        .iter()
        .filter(|(key, truth)| filter.query(key).reported == *truth)
        .count();
    let measured_present = exact as f64 / counted.len() as f64;
    let theory_present: f64 = (1..=c)
        .map(|j| mult::cr_present(bits as f64, n as f64, k as f64, j as f64))
        .sum::<f64>()
        / c as f64;
    assert!(
        relative_error(measured_present, theory_present) < 0.02,
        "CR' measured {measured_present:.4} vs theory {theory_present:.4}"
    );

    // Absent elements: Eq. 27.
    let flows = distinct_flows(n, 0xE66);
    let absent = negatives_for(&flows, 100_000, 0xF04);
    let zeros = absent
        .iter()
        .filter(|f| filter.query(&f.to_bytes()).reported == 0)
        .count();
    let measured_absent = zeros as f64 / absent.len() as f64;
    let theory_absent = mult::cr_absent(bits as f64, n as f64, k as f64, c as f64);
    assert!(
        relative_error(measured_absent, theory_absent) < 0.02,
        "CR measured {measured_absent:.4} vs theory {theory_absent:.4}"
    );
}

#[test]
fn generalized_fpr_matches_eq12_for_t2_and_t3() {
    let (m, k, n) = (24_000usize, 12usize, 1500usize);
    let flows = distinct_flows(n, 0x677);
    let probes = negatives_for(&flows, 500_000, 0xF05);
    for t in [2usize, 3] {
        let mut filter = GenShbfM::new(m, k, t, 0x677).unwrap();
        for f in &flows {
            filter.insert(&f.to_bytes());
        }
        let fp = probes
            .iter()
            .filter(|p| filter.contains(&p.to_bytes()))
            .count();
        let measured = fp as f64 / probes.len() as f64;
        let theory = shbf_theory::fpr_generalized(m as f64, n as f64, k as f64, 57.0, t as u32);
        let rel = relative_error(measured, theory);
        assert!(
            rel < 0.15,
            "t={t}: measured {measured:.6} vs theory {theory:.6} (rel {rel:.4})"
        );
    }
}
