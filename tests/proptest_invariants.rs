//! Property-based invariants across the workspace (proptest).
//!
//! Each property encodes a guarantee the paper relies on:
//! no false negatives, multiplicity answers never undershoot, counting
//! filters return to their exact prior state after delete, association
//! answers never exclude the true region, and the bit substrate's windowed
//! reads agree with naive bit-by-bit gathering.

use proptest::collection::vec;
use proptest::prelude::*;

use shbf::baselines::{Bf, Cbf};
use shbf::bits::BitArray;
use shbf::core::{AssociationAnswer, CShbfM, CShbfX, ShbfA, ShbfM, ShbfX};

/// Arbitrary small byte keys; duplicates allowed (sets dedup internally
/// where needed).
fn keys_strategy(max_len: usize) -> impl Strategy<Value = Vec<Vec<u8>>> {
    vec(vec(any::<u8>(), 1..24), 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shbf_m_never_false_negative(keys in keys_strategy(200), seed in any::<u64>()) {
        let mut f = ShbfM::new(8192, 8, seed).unwrap();
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            prop_assert!(f.contains(k));
        }
    }

    #[test]
    fn bf_never_false_negative(keys in keys_strategy(200), seed in any::<u64>()) {
        let mut f = Bf::new(8192, 6, seed).unwrap();
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            prop_assert!(f.contains(k));
        }
    }

    #[test]
    fn shbf_m_eager_and_lazy_agree(keys in keys_strategy(100), probes in keys_strategy(100), seed in any::<u64>()) {
        let mut f = ShbfM::new(4096, 8, seed).unwrap();
        for k in &keys {
            f.insert(k);
        }
        for p in keys.iter().chain(probes.iter()) {
            prop_assert_eq!(f.contains(p), f.contains_eager(p));
        }
    }

    #[test]
    fn cshbf_m_delete_restores_exact_state(
        base in keys_strategy(100),
        extra in keys_strategy(50),
        seed in any::<u64>()
    ) {
        let mut f = CShbfM::new(8192, 8, seed).unwrap();
        for k in &base {
            f.insert(k);
        }
        let snapshot = f.snapshot().to_bytes();
        // Insert and then delete the extra keys (multiset-style: duplicates
        // inserted as many times as they appear, deleted as many times).
        for k in &extra {
            f.insert(k);
        }
        for k in &extra {
            f.delete(k).unwrap();
        }
        prop_assert_eq!(f.snapshot().to_bytes(), snapshot);
        prop_assert_eq!(f.check_sync(), 0);
    }

    #[test]
    fn cbf_delete_restores_membership(keys in keys_strategy(120), seed in any::<u64>()) {
        let mut f = Cbf::new(8192, 6, seed).unwrap();
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            f.delete(k).unwrap();
        }
        // A fully-drained CBF has all counters at zero: nothing is present.
        for k in &keys {
            prop_assert!(!f.contains(k));
        }
    }

    #[test]
    fn shbf_x_reported_never_undershoots(
        entries in vec((vec(any::<u8>(), 1..16), 1u64..20), 1..80),
        seed in any::<u64>()
    ) {
        // Deduplicate keys (last count wins) as ShbfX::build expects.
        let mut map = std::collections::HashMap::new();
        for (k, c) in entries {
            map.insert(k, c);
        }
        let counted: Vec<(Vec<u8>, u64)> = map.into_iter().collect();
        let f = ShbfX::build(&counted, 16_384, 6, 20, seed).unwrap();
        for (k, c) in &counted {
            let answer = f.query(k);
            prop_assert!(answer.reported >= *c);
            prop_assert!(answer.candidates.contains(c));
        }
    }

    #[test]
    fn cshbf_x_tracks_running_counts(
        ops in vec((0u8..8, any::<bool>()), 1..300),
        seed in any::<u64>()
    ) {
        // 8 possible keys; ops insert (true) or delete (false).
        let mut f = CShbfX::new(4096, 6, 32, seed).unwrap();
        let mut truth = [0u64; 8];
        for (key_id, is_insert) in ops {
            let key = [key_id; 5];
            if is_insert && truth[key_id as usize] < 32 {
                f.insert(&key).unwrap();
                truth[key_id as usize] += 1;
            } else if !is_insert && truth[key_id as usize] > 0 {
                f.delete(&key).unwrap();
                truth[key_id as usize] -= 1;
            }
        }
        for (key_id, count) in truth.iter().enumerate() {
            let key = [key_id as u8; 5];
            let reported = f.query(&key).reported;
            prop_assert!(reported >= *count, "key {key_id}: {reported} < {count}");
        }
        prop_assert_eq!(f.check_sync(), 0);
    }

    #[test]
    fn shbf_a_answer_never_excludes_true_region(
        s1 in keys_strategy(60),
        s2 in keys_strategy(60),
        seed in any::<u64>()
    ) {
        let f = ShbfA::builder()
            .bits(8192)
            .hashes(6)
            .seed(seed)
            .build(&s1, &s2)
            .unwrap();
        let s1set: std::collections::HashSet<_> = s1.iter().collect();
        let s2set: std::collections::HashSet<_> = s2.iter().collect();
        for e in s1.iter().chain(s2.iter()) {
            let answer = f.query(e);
            let in1 = s1set.contains(e);
            let in2 = s2set.contains(e);
            let compatible = match answer {
                AssociationAnswer::OnlyS1 => in1 && !in2,
                AssociationAnswer::Intersection => in1 && in2,
                AssociationAnswer::OnlyS2 => !in1 && in2,
                AssociationAnswer::S1Unsure => in1,
                AssociationAnswer::S2Unsure => in2,
                AssociationAnswer::EitherDifference => in1 != in2,
                AssociationAnswer::Union => true,
                AssociationAnswer::NotInUnion => false,
            };
            prop_assert!(compatible, "answer {answer:?} excludes truth (in1={in1}, in2={in2})");
        }
    }

    #[test]
    fn window_reads_match_naive_bit_gather(
        set_bits in vec(0usize..512, 0..64),
        start in 0usize..500,
        width in 1usize..=64
    ) {
        let mut b = BitArray::new(512);
        for &i in &set_bits {
            b.set(i);
        }
        let window = b.read_window(start, width);
        for j in 0..width {
            let expected = if start + j < 512 { b.get(start + j) } else { false };
            prop_assert_eq!(
                (window >> j) & 1 == 1,
                expected,
                "bit {} of window(start={}, width={})", j, start, width
            );
        }
    }

    #[test]
    fn serialization_roundtrips_for_arbitrary_contents(
        keys in keys_strategy(100),
        seed in any::<u64>()
    ) {
        let mut f = ShbfM::new(4096, 6, seed).unwrap();
        for k in &keys {
            f.insert(k);
        }
        let restored = ShbfM::from_bytes(&f.to_bytes()).unwrap();
        for k in &keys {
            prop_assert!(restored.contains(k));
        }
        prop_assert_eq!(restored.to_bytes(), f.to_bytes());
    }

    /// Deserializing arbitrary garbage must error, never panic, for every
    /// persistable structure.
    #[test]
    fn from_bytes_never_panics_on_garbage(garbage in vec(any::<u8>(), 0..512)) {
        prop_assert!(ShbfM::from_bytes(&garbage).is_err() || !garbage.is_empty());
        let _ = ShbfM::from_bytes(&garbage);
        let _ = shbf::core::GenShbfM::from_bytes(&garbage);
        let _ = ShbfA::from_bytes(&garbage);
        let _ = ShbfX::from_bytes(&garbage);
        let _ = CShbfM::from_bytes(&garbage);
        let _ = CShbfX::from_bytes(&garbage);
        let _ = shbf::core::ScmSketch::from_bytes(&garbage);
        let _ = Bf::from_bytes(&garbage);
        let _ = Cbf::from_bytes(&garbage);
        let _ = shbf::baselines::OneMemBf::from_bytes(&garbage);
        let _ = shbf::baselines::SpectralBf::from_bytes(&garbage);
        let _ = shbf::baselines::CmSketch::from_bytes(&garbage);
        let _ = shbf::baselines::CuckooFilter::from_bytes(&garbage);
    }

    /// The Bloomier filter returns exact values for all keys at any size.
    #[test]
    fn bloomier_is_exact_on_keys(
        entries in vec((vec(any::<u8>(), 1..16), any::<u64>()), 0..120),
    ) {
        // Deduplicate keys (last value wins).
        let mut map = std::collections::HashMap::new();
        for (k, v) in entries {
            map.insert(k, v & 0xFFFF);
        }
        let data: Vec<(Vec<u8>, u64)> = map.into_iter().collect();
        let f = shbf::baselines::BloomierFilter::build(&data, 16, 9).unwrap();
        for (k, v) in &data {
            prop_assert_eq!(f.get(k), *v);
        }
    }
}
