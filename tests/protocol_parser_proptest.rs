//! Property suite for the wire-protocol parser and line framer.
//!
//! Two invariants keep the evented transport honest under adversarial
//! TCP segmentation:
//!
//! 1. **Chunking-invariance**: feeding a request stream to
//!    [`scan_line`] in arbitrary byte chunks produces exactly the same
//!    sequence of parse events (lines, oversize rejections) as handing
//!    it over in one shot — framing is a pure function of the buffered
//!    bytes, never of packet boundaries.
//! 2. **Total robustness**: [`parse_command`] never panics, for valid
//!    commands, random token soup, or raw bytes smashed through lossy
//!    UTF-8 — malformed input must come back as a parse error, not a
//!    crash that drops the connection.

use proptest::collection::vec;
use proptest::prelude::*;

use shbf::server::{parse_command, scan_line, Scan};

/// A parse event, as the evented transport would see it.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    Line(Vec<u8>),
    Oversize,
}

/// Runs the framing loop over `stream` delivered as `chunks` (byte
/// counts; the tail past their sum arrives as one final chunk), with
/// `eof` raised after the last byte — exactly the reactor's read/handle
/// cycle. Stops at the first oversize, as the transport closes there.
fn events_chunked(stream: &[u8], chunks: &[usize], max_line: usize) -> Vec<Event> {
    let mut events = Vec::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut delivered = 0usize;
    let mut boundaries: Vec<usize> = Vec::new();
    for &c in chunks {
        let next = (delivered + c).min(stream.len());
        if next > delivered {
            boundaries.push(next);
            delivered = next;
        }
    }
    if delivered < stream.len() {
        boundaries.push(stream.len());
    }
    if boundaries.is_empty() {
        boundaries.push(0);
    }
    let mut at = 0usize;
    for (i, &upto) in boundaries.iter().enumerate() {
        buf.extend_from_slice(&stream[at..upto]);
        at = upto;
        let eof = i + 1 == boundaries.len();
        loop {
            if buf.is_empty() {
                break;
            }
            match scan_line(&buf, eof, max_line) {
                Scan::Line { line, advance } => {
                    events.push(Event::Line(line.to_vec()));
                    buf.drain(..advance);
                }
                Scan::Incomplete => break,
                Scan::Oversize => {
                    events.push(Event::Oversize);
                    return events;
                }
            }
        }
    }
    events
}

/// Single-shot reference: the whole stream in one buffer with EOF.
fn events_single_shot(stream: &[u8], max_line: usize) -> Vec<Event> {
    events_chunked(stream, &[stream.len()], max_line)
}

/// Builds a request stream from fragments: a mix of plausible command
/// lines, random bytes, and bare terminators.
fn build_stream(fragments: &[(u8, Vec<u8>)]) -> Vec<u8> {
    let mut s = Vec::new();
    for (kind, bytes) in fragments {
        match kind % 6 {
            0 => s.extend_from_slice(b"PING\r\n"),
            1 => {
                s.extend_from_slice(b"QUERY ns ");
                s.extend(bytes.iter().map(|b| b'a' + (b % 26)));
                s.push(b'\n');
            }
            2 => {
                s.extend_from_slice(b"MQUERY ns k1 k2 0x0aff");
                s.push(b'\n');
            }
            3 => s.extend_from_slice(bytes),
            4 => {
                s.extend_from_slice(bytes);
                s.push(b'\n');
            }
            _ => s.extend_from_slice(b"\r\n"),
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary chunkings of arbitrary byte streams yield the same
    /// events as single-shot framing, for generous and tiny line caps.
    #[test]
    fn chunked_framing_equals_single_shot(
        fragments in vec((any::<u8>(), vec(any::<u8>(), 0..24)), 0..12),
        chunks in vec(1usize..40, 0..32),
        cap_select in 0usize..3,
    ) {
        let stream = build_stream(&fragments);
        // Small caps make Oversize reachable; the large cap never is.
        let max_line = [16usize, 64, 1 << 20][cap_select];
        let chunked = events_chunked(&stream, &chunks, max_line);
        let single = events_single_shot(&stream, max_line);
        prop_assert_eq!(
            chunked, single,
            "chunking changed parse events (cap {}, stream {:?})",
            max_line, stream
        );
    }

    /// Every framed line parses to the same result however the stream
    /// was chunked, and parse_command never panics on any of it.
    #[test]
    fn parsed_commands_are_chunking_invariant(
        fragments in vec((any::<u8>(), vec(any::<u8>(), 0..24)), 0..10),
        chunks in vec(1usize..23, 0..24),
    ) {
        let stream = build_stream(&fragments);
        let parse_all = |events: &[Event]| -> Vec<Option<String>> {
            events
                .iter()
                .map(|e| match e {
                    Event::Oversize => None,
                    Event::Line(line) => {
                        let text = String::from_utf8_lossy(line);
                        let trimmed = text.trim_end_matches(['\r', '\n']);
                        Some(match parse_command(trimmed) {
                            Ok(cmd) => format!("{cmd:?}"),
                            Err(e) => format!("ERR {e}"),
                        })
                    }
                })
                .collect()
        };
        let chunked = parse_all(&events_chunked(&stream, &chunks, 1 << 20));
        let single = parse_all(&events_single_shot(&stream, 1 << 20));
        prop_assert_eq!(chunked, single);
    }

    /// Raw byte soup through lossy UTF-8 never panics the parser.
    #[test]
    fn parse_command_is_total_on_arbitrary_bytes(
        bytes in vec(any::<u8>(), 0..96),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_command(&text);
    }

    /// Structured-ish token soup (verbs, numbers, hex keys, family
    /// selectors in random positions) never panics either — it parses
    /// or errors.
    #[test]
    fn parse_command_is_total_on_token_soup(
        picks in vec((0u8..12, any::<u32>()), 0..8),
    ) {
        let mut line = String::new();
        for (i, (kind, n)) in picks.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            match kind {
                0 => line.push_str("CREATE"),
                1 => line.push_str("QUERY"),
                2 => line.push_str("MINSERT"),
                3 => line.push_str("ns"),
                4 => line.push_str("shbf-m"),
                5 => line.push_str(&n.to_string()),
                6 => line.push_str("0xzz"),
                7 => line.push_str(&format!("0x{n:08x}")),
                8 => line.push_str("family=one-shot"),
                9 => line.push_str("family=bogus"),
                10 => line.push_str("  "),
                _ => line.push_str("SHUTDOWN"),
            }
        }
        let _ = parse_command(&line);
    }
}
