//! Transport-conformance harness: every transport, one wire truth.
//!
//! A table of scripted sessions (pipelined query runs, `MINSERT`
//! bulk-loads, oversize lines, UTF-8 garbage, abrupt disconnects
//! mid-line, backpressure floods) is replayed against **threaded TCP,
//! evented TCP, threaded UNIX, and evented UNIX** servers, and every
//! response stream must be byte-identical across all of them — the
//! acceptance gate for the reactor's edge-triggered readiness, vectored
//! writev flushing, and UNIX-socket listener being invisible on the
//! wire. It extends `tests/protocol_segmentation.rs`'s
//! split-at-every-boundary replay to the new writev path and both socket
//! families, and pins down the eventfd-shutdown contract: bounded
//! latency (no poll-timeout stall) with in-flight replies flushed before
//! close.

use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use shbf::server::{Client, Endpoint, Engine, Server, ServerConfig, ServerHandle, TransportKind};

/// One transport × socket combination under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Case {
    ThreadedTcp,
    EventedTcp,
    ThreadedUnix,
    EventedUnix,
}

impl Case {
    fn transport(self) -> TransportKind {
        match self {
            Case::ThreadedTcp | Case::ThreadedUnix => TransportKind::Threaded,
            Case::EventedTcp | Case::EventedUnix => TransportKind::Evented,
        }
    }

    fn is_unix(self) -> bool {
        matches!(self, Case::ThreadedUnix | Case::EventedUnix)
    }
}

/// All cases this platform can run (UNIX sockets need a UNIX target).
fn cases() -> Vec<Case> {
    let mut all = vec![Case::ThreadedTcp, Case::EventedTcp];
    if cfg!(unix) {
        all.push(Case::ThreadedUnix);
        all.push(Case::EventedUnix);
    }
    all
}

static SOCKET_COUNTER: AtomicU64 = AtomicU64::new(0);

fn start_with(case: Case, config: ServerConfig) -> ServerHandle {
    let engine = Arc::new(Engine::new());
    let server = if case.is_unix() {
        #[cfg(unix)]
        {
            let path = std::env::temp_dir().join(format!(
                "shbf-conformance-{}-{}.sock",
                std::process::id(),
                SOCKET_COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            Server::bind_unix(path, engine, config).unwrap()
        }
        #[cfg(not(unix))]
        unreachable!("unix cases are filtered out on non-unix targets")
    } else {
        Server::bind("127.0.0.1:0", engine, config).unwrap()
    };
    server.spawn().unwrap()
}

fn start(case: Case) -> ServerHandle {
    start_with(
        case,
        ServerConfig {
            transport: case.transport(),
            ..ServerConfig::default()
        },
    )
}

/// Creates the namespaces the scripts exercise. Scripts are replayable:
/// their mutations (re-`INSERT`/`MINSERT` of the same keys) never change
/// any reply a later replay reads.
fn seed_state(endpoint: &Endpoint) {
    let mut c = Client::connect_endpoint(endpoint).unwrap();
    for cmd in [
        "CREATE flows shbf-m 140000 8 4 7",
        "CREATE sizes shbf-x 8192 6 30 3",
        "CREATE assoc shbf-a 8192 6 5",
        "INSERT flows seg-a",
        "INSERT sizes hot",
        "INSERT sizes hot",
        "INSERT assoc file-1 1",
    ] {
        let reply = c.send_expect_one(cmd).unwrap();
        assert!(!reply.starts_with('-'), "seed `{cmd}` failed: {reply}");
    }
}

/// The main conformance script: pipelined query runs (the evented
/// transport batches them), `MINSERT` bulk-load feeding the new writev
/// path, namespace switches, every backend, interleaved errors, blank
/// lines. Ends in QUIT so `read_to_end` terminates deterministically.
fn main_script() -> Vec<u8> {
    let mut s = Vec::new();
    s.extend_from_slice(b"PING\r\n");
    s.extend_from_slice(b"MINSERT flows b-1 b-2 b-3\n");
    s.extend_from_slice(b"QUERY flows b-1\nQUERY flows b-2\nQUERY flows b-3\n");
    s.extend_from_slice(b"QUERY flows seg-a\nQUERY flows miss-1\n");
    s.extend_from_slice(b"QUERY assoc file-1\n");
    s.extend_from_slice(b"QUERY sizes hot\n");
    s.extend_from_slice(b"MQUERY flows b-1 miss-2 0x0aff\n");
    s.extend_from_slice(b"COUNT sizes hot\r\n");
    s.extend_from_slice(b"ASSOC assoc file-1\n");
    s.extend_from_slice(b"QUERY flows seg-a\nBOGUS x y\nQUERY flows seg-a\n");
    s.extend_from_slice(b"QUERY ghost nope\nMINSERT sizes a\n");
    s.extend_from_slice(b"\n\r\n   \r\n");
    s.extend_from_slice(b"STATS ghost\n");
    s.extend_from_slice(b"QUIT\r\n");
    s
}

/// Writes `segments` with a pause between them, half-closes, reads to
/// EOF.
fn drive(endpoint: &Endpoint, segments: &[&[u8]], pause: Duration) -> Vec<u8> {
    let mut s = endpoint.connect().unwrap();
    s.set_nodelay(true).unwrap();
    for (i, seg) in segments.iter().enumerate() {
        if i > 0 && !pause.is_zero() {
            std::thread::sleep(pause);
        }
        s.write_all(seg).unwrap();
        s.flush().unwrap();
    }
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let mut out = Vec::new();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.read_to_end(&mut out).unwrap();
    out
}

#[test]
fn scripted_sessions_are_byte_identical_across_all_transports() {
    struct Script {
        name: &'static str,
        bytes: Vec<u8>,
        seeded: bool,
    }
    let oversize = vec![b'x'; (1 << 20) + 2];
    let mut utf8 = b"PING\n".to_vec();
    utf8.extend_from_slice(&[0xff, 0xfe]);
    utf8.extend_from_slice(b"\nPING\n");
    let scripts = [
        Script {
            name: "pipelined_mixed",
            bytes: main_script(),
            seeded: true,
        },
        Script {
            name: "unterminated_tail",
            bytes: b"PING\nPING".to_vec(),
            seeded: false,
        },
        Script {
            name: "utf8_garbage",
            bytes: utf8,
            seeded: false,
        },
        Script {
            name: "oversize_line",
            bytes: oversize,
            seeded: false,
        },
    ];
    for script in &scripts {
        let mut streams: Vec<(Case, Vec<u8>)> = Vec::new();
        for case in cases() {
            let handle = start(case);
            if script.seeded {
                seed_state(handle.endpoint());
            }
            let got = drive(handle.endpoint(), &[&script.bytes], Duration::ZERO);
            assert!(!got.is_empty(), "{case:?}: `{}` got no reply", script.name);
            streams.push((case, got));
            handle.shutdown().unwrap();
        }
        let (ref_case, reference) = &streams[0];
        for (case, got) in &streams[1..] {
            assert_eq!(
                String::from_utf8_lossy(got),
                String::from_utf8_lossy(reference),
                "`{}`: {case:?} diverges from {ref_case:?}",
                script.name
            );
        }
    }
}

#[test]
fn evented_writev_path_survives_every_split_point_on_tcp_and_unix() {
    // Reference stream from the portable threaded transport.
    let reference = {
        let handle = start(Case::ThreadedTcp);
        seed_state(handle.endpoint());
        let r = drive(handle.endpoint(), &[&main_script()], Duration::ZERO);
        handle.shutdown().unwrap();
        r
    };
    let script = main_script();
    let mut evented = vec![Case::EventedTcp];
    if cfg!(unix) {
        evented.push(Case::EventedUnix);
    }
    for case in evented {
        let handle = start(case);
        seed_state(handle.endpoint());
        for i in 1..script.len() {
            let got = drive(
                handle.endpoint(),
                &[&script[..i], &script[i..]],
                Duration::from_millis(2),
            );
            assert_eq!(
                String::from_utf8_lossy(&got),
                String::from_utf8_lossy(&reference),
                "{case:?}: divergence when split at byte {i}"
            );
        }
        handle.shutdown().unwrap();
    }
}

#[test]
fn abrupt_disconnect_mid_line_leaves_the_server_serving() {
    for case in cases() {
        let handle = start(case);
        seed_state(handle.endpoint());
        {
            let mut s = handle.endpoint().connect().unwrap();
            s.write_all(b"PING\n").unwrap();
            let mut pong = [0u8; 7];
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s.read_exact(&mut pong).unwrap();
            assert_eq!(&pong, b"+PONG\r\n", "{case:?}");
            // Half a request line, then vanish without a half-close.
            s.write_all(b"QUERY flows se").unwrap();
            drop(s);
        }
        // The server must shrug it off and keep answering.
        let mut c = Client::connect_endpoint(handle.endpoint()).unwrap();
        assert_eq!(
            c.send("QUERY flows seg-a").unwrap(),
            vec![":1".to_string()],
            "{case:?}: server unhealthy after abrupt disconnect"
        );
        handle.shutdown().unwrap();
    }
}

/// Reads `STATS transport` into (field, value) pairs.
fn transport_stats(endpoint: &Endpoint) -> std::collections::HashMap<String, u64> {
    let mut c = Client::connect_endpoint(endpoint).unwrap();
    let lines = c.send("STATS transport").unwrap();
    assert!(lines[0].starts_with('*'), "not an array: {lines:?}");
    lines[1..]
        .iter()
        .map(|l| {
            let kv = l.strip_prefix('+').expect("simple string field");
            let (k, v) = kv.split_once('=').expect("field=value");
            (k.to_string(), v.parse::<u64>().expect("numeric value"))
        })
        .collect()
}

#[test]
fn backpressure_soak_keeps_replies_exact_and_counts_pause_resume() {
    // STATS amplifies ~20x (short request, long reply), so a pipelined
    // flood outruns kernel socket buffering and trips the (tiny)
    // high-water mark while the client deliberately reads nothing.
    let mut soak_cases = vec![Case::EventedTcp];
    if cfg!(unix) {
        soak_cases.push(Case::EventedUnix);
    }
    for case in soak_cases {
        let handle = start_with(
            case,
            ServerConfig {
                transport: case.transport(),
                write_high_water: 1 << 12,
                ..ServerConfig::default()
            },
        );
        seed_state(handle.endpoint());
        // The two alternating STATS replies differ, so any reply loss or
        // reordering breaks the exact byte comparison below.
        let mut admin = Client::connect_endpoint(handle.endpoint()).unwrap();
        let one_flows = admin.send("STATS flows").unwrap();
        let one_sizes = admin.send("STATS sizes").unwrap();
        drop(admin);
        let frame = |lines: &[String]| {
            let mut v = Vec::new();
            for l in lines {
                v.extend_from_slice(l.as_bytes());
                v.extend_from_slice(b"\r\n");
            }
            v
        };
        let rounds = 120_000usize;
        let mut request = Vec::new();
        let mut expected = Vec::new();
        for _ in 0..rounds {
            request.extend_from_slice(b"STATS flows\r\nSTATS sizes\r\n");
            expected.extend_from_slice(&frame(&one_flows));
            expected.extend_from_slice(&frame(&one_sizes));
        }
        let mut s = handle.endpoint().connect().unwrap();
        s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        let writer = std::thread::spawn({
            let mut w = s.try_clone().unwrap();
            move || {
                w.write_all(&request).unwrap();
                w.shutdown(std::net::Shutdown::Write).unwrap();
            }
        });
        // Slow reader: read nothing until the server has demonstrably
        // crossed the high-water mark and paused this connection (a side
        // connection polls the live counters), so the assertions below
        // don't race the server's reply generation.
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            if transport_stats(handle.endpoint())["backpressure_enter"] >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let mut got = Vec::new();
        s.read_to_end(&mut got).unwrap();
        writer.join().unwrap();
        assert_eq!(got.len(), expected.len(), "{case:?}: reply bytes lost");
        assert_eq!(got, expected, "{case:?}: replies corrupted or reordered");

        let stats = transport_stats(handle.endpoint());
        assert!(
            stats["backpressure_enter"] >= 1,
            "{case:?}: pause never counted: {stats:?}"
        );
        assert!(
            stats["backpressure_exit"] >= 1,
            "{case:?}: resume at half-mark never counted: {stats:?}"
        );
        assert!(
            stats["write_queue_high_water"] > 1 << 12,
            "{case:?}: high-water mark not observed: {stats:?}"
        );
        handle.shutdown().unwrap();
    }
}

#[test]
fn eventfd_shutdown_is_bounded_and_flushes_in_flight_replies() {
    // Regression: the evented transport used to observe shutdown only on
    // its epoll-wait timeout. With the eventfd waker the loops block with
    // NO timeout — if the wakeup were lost, this join would hang forever,
    // and any poll-timeout reintroduction shows up as latency.
    for case in [Case::EventedTcp, Case::ThreadedTcp] {
        let handle = start(case);
        seed_state(handle.endpoint());
        // In-flight replies — including the SHUTDOWN farewell — must all
        // be flushed before the connection closes.
        let mut c = Client::connect_endpoint(handle.endpoint()).unwrap();
        let replies = c
            .send_pipelined(&["PING", "QUERY flows seg-a", "QUERY flows seg-a", "SHUTDOWN"])
            .unwrap();
        assert_eq!(replies[0], vec!["+PONG"], "{case:?}");
        assert_eq!(replies[1], vec![":1"], "{case:?}");
        assert_eq!(replies[2], vec![":1"], "{case:?}");
        assert_eq!(replies[3], vec!["+BYE"], "{case:?}: farewell not flushed");
        let started = Instant::now();
        handle.shutdown().unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "{case:?}: shutdown stalled {:?}",
            started.elapsed()
        );
    }

    // Idle-server variant: loops are parked in a timeout-less epoll_wait
    // with an idle connection; only the waker can end the join.
    let handle = start(Case::EventedTcp);
    let _idle = handle.endpoint().connect().unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let started = Instant::now();
    handle.shutdown().unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "idle shutdown stalled {:?} — eventfd wakeup lost",
        started.elapsed()
    );
}

#[test]
fn stats_transport_counts_traffic_on_every_transport() {
    for case in cases() {
        let handle = start(case);
        seed_state(handle.endpoint());
        let mut c = Client::connect_endpoint(handle.endpoint()).unwrap();
        assert_eq!(c.send("QUERY flows seg-a").unwrap(), vec![":1".to_string()]);
        drop(c);
        let stats = transport_stats(handle.endpoint());
        for field in [
            "accepted",
            "closed",
            "live",
            "bytes_in",
            "bytes_out",
            "backpressure_enter",
            "backpressure_exit",
            "write_queue_high_water",
            "wakeups",
        ] {
            assert!(stats.contains_key(field), "{case:?}: missing {field}");
        }
        // The seed connection, the query connection, and this STATS
        // connection all count.
        assert!(stats["accepted"] >= 2, "{case:?}: {stats:?}");
        assert!(stats["bytes_in"] > 0, "{case:?}: {stats:?}");
        assert!(stats["bytes_out"] > 0, "{case:?}: {stats:?}");
        handle.shutdown().unwrap();
    }
}
