//! Kill-and-recover integration tests for the durable op-log.
//!
//! A real `shbf-cli serve --wal-dir …` child process is driven over TCP,
//! SIGKILLed, and restarted on the same log directory; recovery must
//! reproduce the acknowledged state exactly. The headline assertion is
//! byte-identity: the recovered server's `SNAPSHOT` blob equals the blob
//! of a never-killed twin engine fed the same mutation stream. Satellite
//! coverage: `data_dir` sandboxing of `SNAPSHOT`/`LOAD` paths and clean
//! rejection of corrupt snapshot files.

#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use shbf::server::{Client, Engine, Server, ServerConfig};

/// A `shbf-cli serve` child that is SIGKILLed on drop (so a panicking
/// test never leaks a listener).
struct ServeChild {
    child: Child,
    addr: SocketAddr,
}

impl ServeChild {
    /// Spawns `shbf-cli serve --port 0 <extra args>` and parses the
    /// bound address from its startup line.
    fn spawn(extra: &[&str]) -> ServeChild {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_shbf-cli"));
        cmd.args(["serve", "--port", "0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        let mut child = cmd.spawn().expect("spawning shbf-cli serve");
        let stdout = child.stdout.take().expect("child stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("server exited before announcing its address")
                .expect("reading server stdout");
            if let Some(rest) = line.strip_prefix("shbf-server listening on ") {
                let addr = rest
                    .split_whitespace()
                    .next()
                    .expect("address token in startup line");
                break addr.parse().expect("startup line socket address");
            }
        };
        // Keep draining stdout so the child never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines.by_ref() {});
        ServeChild { child, addr }
    }

    fn connect(&self) -> Client {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match Client::connect(self.addr) {
                Ok(client) => return client,
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10))
                }
                Err(e) => panic!("connecting to {}: {e}", self.addr),
            }
        }
    }

    /// SIGKILL — no flush, no shutdown handler, the crash we claim to
    /// survive.
    fn kill(&mut self) {
        self.child.kill().expect("SIGKILL");
        self.child.wait().expect("reaping killed child");
    }
}

impl Drop for ServeChild {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "shbf-walrec-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn expect_ok(client: &mut Client, command: &str) {
    let reply = client.send_expect_one(command).unwrap();
    assert!(
        reply.starts_with("+OK") || reply.starts_with(':'),
        "`{command}` replied `{reply}`"
    );
}

/// The mutation stream both the killed server and the never-killed twin
/// replay: every op kind the WAL logs, including a DROP + re-CREATE and
/// enough inserts to cross the `--snapshot-every` threshold so recovery
/// exercises snapshot-plus-tail, not just tail replay.
fn mutation_stream() -> Vec<String> {
    let mut ops = vec![
        "CREATE flows shbf-m 200000 8 4 7".to_string(),
        "CREATE sizes shbf-x 8192 6 30 3".to_string(),
        "CREATE gw shbf-a 8192 6 5".to_string(),
        "CREATE doomed shbf-m 10000 4".to_string(),
    ];
    for i in 0..120 {
        ops.push(format!("INSERT flows key-{i}"));
    }
    ops.push("MINSERT flows bulk-a bulk-b bulk-c 0x00ff17".to_string());
    for _ in 0..3 {
        ops.push("INSERT sizes hot-file".to_string());
    }
    ops.push("INSERT sizes cold-file".to_string());
    ops.push("DELETE sizes cold-file".to_string());
    ops.push("INSERT gw pkt-1 1".to_string());
    ops.push("INSERT gw pkt-2 2".to_string());
    ops.push("INSERT gw pkt-both 1".to_string());
    ops.push("INSERT gw pkt-both 2".to_string());
    ops.push("INSERT doomed gone".to_string());
    ops.push("DROP doomed".to_string());
    ops.push("CREATE doomed shbf-m 20000 6 2 11".to_string());
    ops.push("INSERT doomed reborn".to_string());
    ops
}

#[test]
fn sigkill_after_acked_mutations_recovers_byte_identical_state() {
    let wal_dir = temp_dir("wal");
    let out_dir = temp_dir("out");
    let wal = wal_dir.to_str().unwrap();

    // Phase 1: feed the stream, every op acknowledged under
    // --fsync always, then SIGKILL — no clean shutdown, no final flush.
    let mut server = ServeChild::spawn(&[
        "--wal-dir",
        wal,
        "--fsync",
        "always",
        "--snapshot-every",
        "40",
    ]);
    {
        let mut client = server.connect();
        for op in mutation_stream() {
            expect_ok(&mut client, &op);
        }
    }
    server.kill();
    // The log was snapshot-truncated at least twice (ops > 2×40), so
    // recovery genuinely composes snapshot + tail.
    let snapshots = std::fs::read_dir(&wal_dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "snap")
        })
        .count();
    assert!(snapshots >= 1, "expected periodic snapshots in {wal}");

    // Phase 2: restart on the same WAL dir; recovery must reproduce the
    // exact registry a never-killed twin reaches from the same stream.
    let recovered = ServeChild::spawn(&["--wal-dir", wal, "--fsync", "always"]);
    let snap_path = out_dir.join("recovered.snap");
    {
        let mut client = recovered.connect();
        // No queries before SNAPSHOT: hit/miss counters are persisted
        // state, and the twin below runs the mutation stream only.
        expect_ok(&mut client, &format!("SNAPSHOT {}", snap_path.display()));
    }
    let recovered_blob = std::fs::read(&snap_path).unwrap();

    let twin = Engine::new();
    for op in mutation_stream() {
        let reply = twin.eval_line(&op);
        assert!(
            !reply.encode_to_string().starts_with('-'),
            "twin rejected `{op}`: {reply:?}"
        );
    }
    let twin_blob = shbf::server::snapshot::to_bytes(twin.registry());
    assert_eq!(
        recovered_blob, twin_blob,
        "recovered snapshot differs from the never-killed twin"
    );

    // And the recovered server keeps answering correctly.
    let mut client = recovered.connect();
    for i in 0..120 {
        assert_eq!(
            client
                .send_expect_one(&format!("QUERY flows key-{i}"))
                .unwrap(),
            ":1",
            "false negative after recovery on key-{i}"
        );
    }
    assert_eq!(
        client.send_expect_one("COUNT sizes hot-file").unwrap(),
        ":3"
    );
    assert_eq!(client.send_expect_one("QUERY doomed reborn").unwrap(), ":1");
    // Association answers are filter-state-dependent — recovered and
    // twin must agree exactly, whatever the paper-outcome token is.
    let twin_assoc = format!("+{}", {
        let r = twin.eval_line("ASSOC gw pkt-both").encode_to_string();
        r.trim_start_matches('+').trim_end().to_string()
    });
    assert_eq!(
        client.send_expect_one("ASSOC gw pkt-both").unwrap(),
        twin_assoc,
        "association answer diverged after recovery"
    );

    std::fs::remove_dir_all(&wal_dir).ok();
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn sigkill_mid_stream_loses_no_acknowledged_write() {
    let wal_dir = temp_dir("midkill");
    let wal = wal_dir.to_str().unwrap();

    let mut server = ServeChild::spawn(&[
        "--wal-dir",
        wal,
        "--fsync",
        "always",
        "--snapshot-every",
        "25",
    ]);
    let mut client = server.connect();
    expect_ok(&mut client, "CREATE flows shbf-m 400000 8 4 7");

    // Insert one key at a time, each individually acknowledged, while a
    // killer thread SIGKILLs the server at an arbitrary point mid-stream
    // — the kill races the insert loop, landing between some write and
    // its ack.
    let pid = server.child.id().to_string();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(120));
        Command::new("kill").args(["-9", &pid]).status().ok();
    });
    let mut last_acked: i64 = -1;
    for i in 0..500_000u64 {
        match client.send_expect_one(&format!("INSERT flows key-{i}")) {
            Ok(reply) if reply == "+OK" => last_acked = i as i64,
            // Connection error or partial reply: the kill landed.
            _ => break,
        }
    }
    killer.join().unwrap();
    server.kill();
    assert!(
        last_acked >= 0,
        "no insert was acknowledged before the kill"
    );

    // Every acknowledged insert must be present after recovery: with
    // --fsync always, the ack implies the record hit stable storage.
    let recovered = ServeChild::spawn(&["--wal-dir", wal, "--fsync", "always"]);
    let mut client = recovered.connect();
    for i in 0..=last_acked {
        assert_eq!(
            client
                .send_expect_one(&format!("QUERY flows key-{i}"))
                .unwrap(),
            ":1",
            "acknowledged insert key-{i} lost by the crash (of {last_acked} acked)"
        );
    }
    // The server is fully live, not read-only or wedged.
    expect_ok(&mut client, "INSERT flows post-crash");
    assert_eq!(
        client.send_expect_one("QUERY flows post-crash").unwrap(),
        ":1"
    );

    std::fs::remove_dir_all(&wal_dir).ok();
}

#[test]
fn data_dir_sandboxes_snapshot_and_load_paths() {
    let data_dir = temp_dir("sandbox");
    let engine = Arc::new(Engine::new());
    let config = ServerConfig {
        data_dir: Some(data_dir.clone()),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", engine, config).unwrap();
    let handle = server.spawn().unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    expect_ok(&mut client, "CREATE flows shbf-m 10000 4");
    expect_ok(&mut client, "INSERT flows k");

    // Escapes are rejected with the exact documented error.
    for bad in [
        "/etc/shbf-pwned.snap",
        "../escape.snap",
        "a/../../escape.snap",
        "/",
    ] {
        for verb in ["SNAPSHOT", "LOAD"] {
            assert_eq!(
                client.send_expect_one(&format!("{verb} {bad}")).unwrap(),
                "-ERR path outside data dir",
                "`{verb} {bad}` escaped the sandbox"
            );
        }
    }

    // Relative paths resolve inside the data dir.
    expect_ok(&mut client, "SNAPSHOT nested.snap");
    assert!(
        data_dir.join("nested.snap").is_file(),
        "sandboxed snapshot landed outside {}",
        data_dir.display()
    );
    expect_ok(&mut client, "LOAD nested.snap");
    assert_eq!(client.send_expect_one("QUERY flows k").unwrap(), ":1");

    drop(client);
    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&data_dir).ok();
}

#[test]
fn corrupt_snapshot_load_is_rejected_cleanly() {
    let data_dir = temp_dir("corrupt");
    let engine = Arc::new(Engine::new());
    let config = ServerConfig {
        data_dir: Some(data_dir.clone()),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", engine, config).unwrap();
    let handle = server.spawn().unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    expect_ok(&mut client, "CREATE flows shbf-m 10000 4");
    expect_ok(&mut client, "INSERT flows k");
    expect_ok(&mut client, "SNAPSHOT good.snap");

    // Flip a byte in the middle: the CRC-checked container must refuse
    // it and leave the live registry untouched.
    let path = data_dir.join("good.snap");
    let mut blob = std::fs::read(&path).unwrap();
    let mid = blob.len() / 2;
    blob[mid] ^= 0x40;
    std::fs::write(data_dir.join("bad.snap"), &blob).unwrap();
    // Truncated and garbage files too.
    std::fs::write(data_dir.join("short.snap"), &blob[..4]).unwrap();
    std::fs::write(data_dir.join("noise.snap"), b"not a snapshot at all").unwrap();

    for bad in ["bad.snap", "short.snap", "noise.snap"] {
        let reply = client.send_expect_one(&format!("LOAD {bad}")).unwrap();
        assert!(reply.starts_with("-ERR"), "`LOAD {bad}` replied `{reply}`");
        assert_eq!(
            client.send_expect_one("QUERY flows k").unwrap(),
            ":1",
            "registry damaged by rejected `LOAD {bad}`"
        );
    }

    drop(client);
    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&data_dir).ok();
}
