//! Protocol framing under adversarial TCP segmentation.
//!
//! TCP gives no message boundaries: a pipelined request stream can arrive
//! split at any byte, one byte at a time, or all at once. Both transports
//! must produce **byte-identical response streams** for every
//! segmentation — this is the acceptance gate for the evented transport's
//! pipelined parsing (grouped queries, coalesced writes) being invisible
//! on the wire.
//!
//! Method: one fixed command script (mixed LF/CRLF, adjacent QUERY runs,
//! namespace switches, MQUERY, errors, blank lines) is replayed against a
//! live server split at **every** byte boundary, plus one-byte-at-a-time
//! and all-at-once, for both transports; every response stream must equal
//! the unsegmented reference, and the references must agree across
//! transports.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use shbf::server::{Client, Engine, Server, ServerConfig, ServerHandle, TransportKind};

fn start(transport: TransportKind) -> (ServerHandle, SocketAddr) {
    let engine = Arc::new(Engine::new());
    let server = Server::bind(
        "127.0.0.1:0",
        engine,
        ServerConfig {
            transport,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();
    (handle, addr)
}

/// Creates the namespaces the replayed script queries. Only run once per
/// server: the script itself is idempotent (its INSERTs re-insert the
/// same membership key, which never changes any reply it reads).
fn seed_state(addr: SocketAddr) {
    let mut c = Client::connect(addr).unwrap();
    for cmd in [
        "CREATE flows shbf-m 140000 8 4 7",
        "CREATE sizes shbf-x 8192 6 30 3",
        "CREATE assoc shbf-a 8192 6 5",
        "INSERT sizes hot",
        "INSERT sizes hot",
        "INSERT assoc file-1 1",
    ] {
        let reply = c.send_expect_one(cmd).unwrap();
        assert!(!reply.starts_with('-'), "seed `{cmd}` failed: {reply}");
    }
}

/// The replayed script. Ends in QUIT so the server closes the connection
/// and `read_to_end` terminates deterministically.
fn script() -> Vec<u8> {
    let mut s = Vec::new();
    s.extend_from_slice(b"PING\r\n"); // CRLF
    s.extend_from_slice(b"INSERT flows seg-a\n"); // LF
    s.extend_from_slice(b"QUERY flows seg-a\r\n");
    // An adjacent run of QUERYs (the evented transport batches these).
    s.extend_from_slice(b"QUERY flows seg-a\nQUERY flows miss-1\nQUERY flows miss-2\n");
    // Namespace switch mid-run, then a different-backend query.
    s.extend_from_slice(b"QUERY assoc file-1\n");
    s.extend_from_slice(b"QUERY sizes hot\n");
    s.extend_from_slice(b"MQUERY flows seg-a miss-3 0x0aff\n");
    s.extend_from_slice(b"COUNT sizes hot\r\n");
    s.extend_from_slice(b"ASSOC assoc file-1\n");
    // Errors interleaved with a query run: unknown verb, unknown
    // namespace (splits the run), type error.
    s.extend_from_slice(b"QUERY flows seg-a\nBOGUS x y\nQUERY flows seg-a\n");
    s.extend_from_slice(b"QUERY ghost nope\nQUERY flows seg-a\n");
    s.extend_from_slice(b"COUNT flows seg-a\n");
    // Blank and whitespace-only lines (skipped vs. "empty command").
    s.extend_from_slice(b"\n\r\n   \r\n");
    s.extend_from_slice(b"STATS ghost\n");
    s.extend_from_slice(b"QUIT\r\n");
    s
}

/// Writes `segments` with a pause between them (defeating loopback
/// coalescing often enough to matter), half-closes, reads to EOF.
fn drive(addr: SocketAddr, segments: &[&[u8]], pause: Duration) -> Vec<u8> {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_nodelay(true).unwrap();
    for (i, seg) in segments.iter().enumerate() {
        if i > 0 && !pause.is_zero() {
            std::thread::sleep(pause);
        }
        s.write_all(seg).unwrap();
        s.flush().unwrap();
    }
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let mut out = Vec::new();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.read_to_end(&mut out).unwrap();
    out
}

fn reference_for(transport: TransportKind) -> (ServerHandle, SocketAddr, Vec<u8>) {
    let (handle, addr) = start(transport);
    seed_state(addr);
    let reference = drive(addr, &[&script()], Duration::ZERO);
    assert!(!reference.is_empty());
    (handle, addr, reference)
}

#[test]
fn responses_agree_across_transports_unsegmented() {
    let (h1, _, threaded) = reference_for(TransportKind::Threaded);
    let (h2, _, evented) = reference_for(TransportKind::Evented);
    assert_eq!(
        String::from_utf8_lossy(&threaded),
        String::from_utf8_lossy(&evented),
        "transports disagree on the reference stream"
    );
    h1.shutdown().unwrap();
    h2.shutdown().unwrap();
}

fn split_at_every_boundary(transport: TransportKind) {
    let (handle, addr, reference) = reference_for(transport);
    let script = script();
    for i in 1..script.len() {
        let got = drive(
            addr,
            &[&script[..i], &script[i..]],
            Duration::from_millis(2),
        );
        assert_eq!(
            String::from_utf8_lossy(&got),
            String::from_utf8_lossy(&reference),
            "{transport:?}: divergence when split at byte {i}"
        );
    }
    handle.shutdown().unwrap();
}

#[test]
fn threaded_survives_every_split_point() {
    split_at_every_boundary(TransportKind::Threaded);
}

#[test]
fn evented_survives_every_split_point() {
    split_at_every_boundary(TransportKind::Evented);
}

#[test]
fn one_byte_at_a_time_matches_the_reference() {
    for transport in [TransportKind::Threaded, TransportKind::Evented] {
        let (handle, addr, reference) = reference_for(transport);
        let script = script();
        let singles: Vec<&[u8]> = script.chunks(1).collect();
        let got = drive(addr, &singles, Duration::from_micros(300));
        assert_eq!(
            String::from_utf8_lossy(&got),
            String::from_utf8_lossy(&reference),
            "{transport:?}: one-byte-at-a-time diverged"
        );
        handle.shutdown().unwrap();
    }
}

#[test]
fn unterminated_final_line_is_served_at_eof() {
    let mut streams = Vec::new();
    for transport in [TransportKind::Threaded, TransportKind::Evented] {
        let (handle, addr) = start(transport);
        let got = drive(addr, &[b"PING\nPING"], Duration::ZERO);
        assert_eq!(
            got, b"+PONG\r\n+PONG\r\n",
            "{transport:?}: EOF tail not served"
        );
        streams.push(got);
        handle.shutdown().unwrap();
    }
    assert_eq!(streams[0], streams[1]);
}

#[test]
fn invalid_utf8_gets_one_error_then_close_on_both_transports() {
    let mut streams = Vec::new();
    for transport in [TransportKind::Threaded, TransportKind::Evented] {
        let (handle, addr) = start(transport);
        // Valid line, then garbage; anything after the garbage line is
        // dead — the connection closes after the error reply.
        let got = drive(addr, &[b"PING\n\xff\xfe\nPING\n"], Duration::ZERO);
        let text = String::from_utf8_lossy(&got).into_owned();
        assert!(text.starts_with("+PONG\r\n-ERR"), "{transport:?}: {text}");
        assert!(text.contains("UTF-8"), "{transport:?}: {text}");
        assert!(
            !text.ends_with("+PONG\r\n"),
            "{transport:?} served past close"
        );
        streams.push(got);
        handle.shutdown().unwrap();
    }
    assert_eq!(streams[0], streams[1], "transports disagree on UTF-8 error");
}

#[test]
fn oversized_line_is_rejected_while_the_peer_keeps_the_socket_open() {
    // Regression: the cap must fire from the byte budget alone — no EOF,
    // no write pause — otherwise a peer streaming newline-free bytes
    // grows the line buffer without bound.
    for transport in [TransportKind::Threaded, TransportKind::Evented] {
        let (handle, addr) = start(transport);
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_nodelay(true).unwrap();
        // Exactly the over-cap budget, so the server consumes every byte
        // (clean close, no RST) but must still reject.
        let huge = vec![b'y'; (1 << 20) + 2];
        s.write_all(&huge).unwrap();
        // Write side stays open: the reply must arrive anyway.
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut got = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            match s.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => got.extend_from_slice(&buf[..n]),
                Err(e) => panic!("{transport:?}: no oversize reply without EOF: {e}"),
            }
        }
        let text = String::from_utf8_lossy(&got).into_owned();
        assert!(
            text.starts_with("-ERR protocol: request line exceeds"),
            "{transport:?}: {text}"
        );
        handle.shutdown().unwrap();
    }
}

#[test]
fn oversized_request_lines_are_rejected_identically() {
    let mut streams = Vec::new();
    for transport in [TransportKind::Threaded, TransportKind::Evented] {
        let (handle, addr) = start(transport);
        // 1 MiB + 2 bytes, never a newline: both transports must answer
        // with the oversize error and close.
        let huge = vec![b'x'; (1 << 20) + 2];
        let got = drive(addr, &[&huge], Duration::ZERO);
        let text = String::from_utf8_lossy(&got).into_owned();
        assert!(
            text.starts_with("-ERR protocol: request line exceeds"),
            "{transport:?}: {text}"
        );
        streams.push(got);
        handle.shutdown().unwrap();
    }
    assert_eq!(streams[0], streams[1], "transports disagree on oversize");
}
