//! # shbf — Shifting Bloom Filters for set queries
//!
//! Facade crate re-exporting the whole workspace. See the individual crates
//! for details; the README has a quickstart.
//!
//! ```
//! use shbf::core::{ShbfA, ShbfM, ShbfX};
//!
//! // Membership: half the hashing & memory accesses of a Bloom filter.
//! let mut seen = ShbfM::new(14_000, 8, 0xC0FFEE).unwrap();
//! seen.insert(b"flow-1");
//! assert!(seen.contains(b"flow-1"));
//!
//! // Association: which of two (overlapping) sets holds an element?
//! let gateway = ShbfA::builder()
//!     .hashes(10)
//!     .seed(1)
//!     .build(&[b"a", b"b"], &[b"b", b"c"])
//!     .unwrap();
//! assert!(gateway.query(b"b").is_clear());
//!
//! // Multiplicity: counts encoded in bit offsets, no counters stored.
//! let counts = [(b"x".to_vec(), 3u64)];
//! let sizes = ShbfX::build(&counts, 4096, 8, 57, 2).unwrap();
//! assert_eq!(sizes.query(b"x").reported, 3);
//! ```

#![forbid(unsafe_code)]

pub use shbf_analysis as analysis;
pub use shbf_baselines as baselines;
pub use shbf_bits as bits;
pub use shbf_concurrent as concurrent;
pub use shbf_core as core;
pub use shbf_hash as hash;
pub use shbf_server as server;
pub use shbf_workloads as workloads;
