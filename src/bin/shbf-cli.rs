//! `shbf-cli` — build, query, and inspect Shifting Bloom Filters from the
//! command line.
//!
//! ```text
//! shbf-cli gen-trace --flows 100000 --packets 500000 --out t.trace
//! shbf-cli build     --trace t.trace --kind shbf-m --out flows.filter
//! shbf-cli build     --trace t.trace --kind shbf-x --out counts.filter
//! shbf-cli query     --filter flows.filter --trace t.trace --sample 1000
//! shbf-cli stats     --filter flows.filter
//! shbf-cli serve     --port 7878 --workers 64
//! shbf-cli client    --port 7878 --send "CREATE flows shbf-m 140000 8"
//! ```

use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use shbf::analysis::{bf as bf_theory, shbf as shbf_theory};
use shbf::baselines::Bf;
use shbf::core::{ShbfM, ShbfX};
use shbf::server::{Client, Engine, Server, ServerConfig, TransportKind};
use shbf::workloads::{SyntheticTrace, TraceConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen-trace") => cmd_gen_trace(&args[1..]),
        Some("build") => cmd_build(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `shbf-cli help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    println!(
        "shbf-cli — Shifting Bloom Filters for set queries (VLDB 2016 reproduction)

COMMANDS
  gen-trace --flows N --packets P --out FILE [--seed S] [--theta T]
      Generate a synthetic 5-tuple packet trace (binary, CRC-checked).

  build --trace FILE --out FILE [--kind shbf-m|bf|shbf-x]
        [--bits-per-item B] [--k K] [--max-count C] [--seed S]
      Build a filter from a trace's distinct flows (shbf-m / bf) or from
      its per-flow packet counts (shbf-x).

  query --filter FILE (--key HEX | --trace FILE [--sample N])
      Query a filter: one hex-encoded key, or sampled flows from a trace
      (reports hit rate; for shbf-x, exact-count rate).

  stats --filter FILE
      Print a filter's parameters, fill ratio, and theoretical FPR.

  serve [--port P] [--bind ADDR] [--unix PATH] [--workers N]
        [--load SNAPSHOT] [--evented] [--reactors N]
        [--wal-dir DIR] [--fsync always|everysec|no] [--snapshot-every N]
        [--data-dir DIR] [--replicaof HOST:PORT]
        [--metrics-addr HOST:PORT] [--slowlog-us N]
        [--conn-idle-secs N] [--shed-busy] [--failpoints-admin]
        [--trace-sample off|1inN] [--log-level error|warn|info|debug]
        [--log-format text|json]
      Run the set-query daemon (default 127.0.0.1:7878, 64 workers).
      Speaks the RESP-like line protocol documented in shbf-server;
      --unix listens on a UNIX-domain socket path instead of TCP;
      --load restores namespaces from a snapshot file at startup;
      --evented serves with the edge-triggered epoll reactor transport
      (pipelined parsing + vectored writes; Linux, falls back to
      threaded elsewhere), --reactors caps its event-loop threads.
      --wal-dir enables the durable op-log: mutations are appended
      (flushed per --fsync, default everysec) before the reply, a
      snapshot + log truncation runs every --snapshot-every mutations
      (default 10000), and boot recovers the newest snapshot plus the
      log tail. --data-dir sandboxes SNAPSHOT/LOAD paths to one
      directory. --replicaof starts as a read replica of a primary
      (mutually exclusive with --wal-dir). --metrics-addr also serves
      Prometheus text metrics over HTTP at GET /metrics (port 0 picks
      an ephemeral port, printed at startup); --slowlog-us sets the
      SLOWLOG threshold in microseconds (default 10000, 0 disables).
      --conn-idle-secs reaps connections silent for N seconds (0, the
      default, never reaps); --shed-busy turns connections over the
      --workers cap into an immediate `-ERR busy` instead of queueing
      them; --failpoints-admin enables the FAILPOINT admin verb (fault
      injection for chaos testing — never enable in production). The
      SHBF_FAILPOINTS env var seeds failpoints at startup either way.
      --trace-sample 1inN records a full span tree for one in N
      requests (admin/batch verbs are always traced while sampling is
      on; default off = zero cost): inspect with TRACE GET, or load
      GET /trace on the metrics port into chrome://tracing / Perfetto.
      Requests over --slowlog-us retain their trace, and SLOWLOG GET
      shows the trace id plus per-phase timings. --log-level filters
      the structured stderr log (default info); --log-format json
      emits one JSON object per line instead of text.

  client [--port P] [--host ADDR] [--unix PATH] [--send CMD]
         [--pipeline N] [--timeout-ms N]
      Talk to a running daemon (over TCP, or --unix for a UNIX-socket
      server): --send fires one command and prints the reply; without
      it, a line REPL reads from stdin. --pipeline N writes up to N
      commands before reading their replies (stdin mode; with --send,
      split commands on `;`) — against an --evented server this drives
      the batched query path. --timeout-ms bounds both the TCP connect
      and every reply read (0, the default, waits forever)."
    );
}

/// Minimal flag parser: `--name value` pairs plus boolean flags.
struct Flags<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Flags<'a> {
    fn parse(args: &'a [String]) -> Result<Self, String> {
        Self::parse_with_bools(args, &[])
    }

    /// Like [`Self::parse`], but flags named in `bools` take no value
    /// (they read as `"true"` when present).
    fn parse_with_bools(args: &'a [String], bools: &[&str]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let name = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got `{}`", args[i]))?;
            if bools.contains(&name) {
                pairs.push((name, "true"));
                i += 1;
                continue;
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{name} needs a value"))?;
            pairs.push((name, value.as_str()));
            i += 2;
        }
        Ok(Flags { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required --{name}"))
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse `{v}`")),
        }
    }
}

fn cmd_gen_trace(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let flows: usize = flags
        .require("flows")?
        .parse()
        .map_err(|_| "--flows: not a number")?;
    let packets: usize = flags
        .require("packets")?
        .parse()
        .map_err(|_| "--packets: not a number")?;
    let out = PathBuf::from(flags.require("out")?);
    let seed: u64 = flags.get_parsed("seed", 0x5683_2016)?;
    let theta: f64 = flags.get_parsed("theta", 0.9)?;

    if packets < flows {
        return Err("--packets must be >= --flows".into());
    }
    let trace = SyntheticTrace::generate(&TraceConfig {
        distinct_flows: flows,
        total_packets: packets,
        zipf_theta: theta,
        seed,
    });
    trace
        .write_file(&out)
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "wrote {}: {} packets, {} distinct flows (zipf θ = {theta}, seed {seed:#x})",
        out.display(),
        trace.len(),
        trace.flows.len()
    );
    Ok(())
}

fn load_trace(path: &str) -> Result<SyntheticTrace, String> {
    SyntheticTrace::read_file(Path::new(path)).map_err(|e| format!("reading {path}: {e}"))
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let trace = load_trace(flags.require("trace")?)?;
    let out = PathBuf::from(flags.require("out")?);
    let kind = flags.get("kind").unwrap_or("shbf-m");
    let bits_per_item: usize = flags.get_parsed("bits-per-item", 14)?;
    let seed: u64 = flags.get_parsed("seed", 0x5683_2016)?;

    let n = trace.flows.len();
    let m = n * bits_per_item;
    let blob = match kind {
        "shbf-m" => {
            let k: usize = flags.get_parsed("k", ShbfM::optimal_even_k(m, n))?;
            let mut f = ShbfM::new(m, k, seed).map_err(|e| e.to_string())?;
            for flow in &trace.flows {
                f.insert(&flow.to_bytes());
            }
            println!(
                "built ShBF_M: m = {m}, k = {k}, {n} flows, fill {:.3}",
                f.fill_ratio()
            );
            f.to_bytes()
        }
        "bf" => {
            let k: usize = flags.get_parsed("k", Bf::optimal_k(m, n))?;
            let mut f = Bf::new(m, k, seed).map_err(|e| e.to_string())?;
            for flow in &trace.flows {
                f.insert(&flow.to_bytes());
            }
            println!(
                "built BF: m = {m}, k = {k}, {n} flows, fill {:.3}",
                f.fill_ratio()
            );
            f.to_bytes()
        }
        "shbf-x" => {
            let c: usize = flags.get_parsed("max-count", 57)?;
            let k: usize = flags.get_parsed("k", 8)?;
            let counts: Vec<([u8; 13], u64)> = trace
                .flow_counts()
                .into_iter()
                .map(|(f, count)| (f.to_bytes(), count.min(c as u64)))
                .collect();
            let f = ShbfX::build(&counts, m, k, c, seed).map_err(|e| e.to_string())?;
            println!("built ShBF_X: m = {m}, k = {k}, c = {c}, {n} flows (counts capped at {c})");
            f.to_bytes()
        }
        other => return Err(format!("unknown --kind `{other}` (shbf-m | bf | shbf-x)")),
    };
    std::fs::write(&out, &blob).map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!("wrote {} ({} bytes)", out.display(), blob.len());
    Ok(())
}

/// Filter files are self-describing through their kind tag; try each type.
enum AnyFilter {
    ShbfM(ShbfM),
    Bf(Bf),
    ShbfX(ShbfX),
}

fn load_filter(path: &str) -> Result<AnyFilter, String> {
    let blob = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    if let Ok(f) = ShbfM::from_bytes(&blob) {
        return Ok(AnyFilter::ShbfM(f));
    }
    if let Ok(f) = Bf::from_bytes(&blob) {
        return Ok(AnyFilter::Bf(f));
    }
    if let Ok(f) = ShbfX::from_bytes(&blob) {
        return Ok(AnyFilter::ShbfX(f));
    }
    Err(format!(
        "{path}: not a recognized filter file (or corrupted)"
    ))
}

fn parse_hex(s: &str) -> Result<Vec<u8>, String> {
    // One hex decoder for the whole project: the server protocol's key
    // codec, which expects a `0x` prefix the CLI flag omits.
    shbf::server::protocol::decode_key(&format!("0x{s}")).map_err(|e| format!("--key: {e}"))
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let filter = load_filter(flags.require("filter")?)?;

    if let Some(hex) = flags.get("key") {
        let key = parse_hex(hex)?;
        match &filter {
            AnyFilter::ShbfM(f) => println!("ShBF_M contains: {}", f.contains(&key)),
            AnyFilter::Bf(f) => println!("BF contains: {}", f.contains(&key)),
            AnyFilter::ShbfX(f) => {
                let a = f.query(&key);
                println!(
                    "ShBF_X multiplicity: {} (candidates {:?})",
                    a.reported, a.candidates
                );
            }
        }
        return Ok(());
    }

    let trace = load_trace(flags.require("trace")?)?;
    let sample: usize = flags.get_parsed("sample", 10_000)?;
    let flows: Vec<_> = trace.flows.iter().take(sample).collect();
    if flows.is_empty() {
        return Err("trace has no flows".into());
    }
    match &filter {
        AnyFilter::ShbfM(f) => {
            let hits = flows.iter().filter(|x| f.contains(&x.to_bytes())).count();
            println!("ShBF_M: {hits}/{} trace flows present", flows.len());
        }
        AnyFilter::Bf(f) => {
            let hits = flows.iter().filter(|x| f.contains(&x.to_bytes())).count();
            println!("BF: {hits}/{} trace flows present", flows.len());
        }
        AnyFilter::ShbfX(f) => {
            let counts = trace.flow_counts();
            let checked = counts.iter().take(sample);
            let mut exact = 0usize;
            let mut under = 0usize;
            let mut total = 0usize;
            for (flow, count) in checked {
                let reported = f.query(&flow.to_bytes()).reported;
                let capped = (*count).min(f.c() as u64);
                if reported == capped {
                    exact += 1;
                }
                if reported < capped {
                    under += 1;
                }
                total += 1;
            }
            println!(
                "ShBF_X over {total} flows: {exact} exact ({:.2}%), {under} under-reports",
                100.0 * exact as f64 / total as f64
            );
        }
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse_with_bools(args, &["evented", "shed-busy", "failpoints-admin"])?;
    let bind = flags.get("bind").unwrap_or("127.0.0.1");
    let port: u16 = flags.get_parsed("port", 7878)?;
    let workers: usize = flags.get_parsed("workers", 64)?;
    let evented = flags.get("evented").is_some();
    let reactors: usize = flags.get_parsed("reactors", 0)?;
    let wal_dir = flags.get("wal-dir").map(PathBuf::from);
    let fsync: shbf::server::FsyncPolicy = flags
        .get("fsync")
        .map(str::parse)
        .transpose()?
        .unwrap_or_default();
    let snapshot_every_ops: u64 = flags.get_parsed("snapshot-every", 10_000)?;
    let data_dir = flags.get("data-dir").map(PathBuf::from);
    let replica_of = flags.get("replicaof").map(str::to_string);
    let metrics_addr = flags.get("metrics-addr").map(str::to_string);
    let slowlog_us: u64 = flags.get_parsed("slowlog-us", 10_000)?;
    let conn_idle_secs: u64 = flags.get_parsed("conn-idle-secs", 0)?;
    let shed_busy = flags.get("shed-busy").is_some();
    let failpoints_admin = flags.get("failpoints-admin").is_some();
    let trace_sample =
        shbf::server::trace::parse_sample(flags.get("trace-sample").unwrap_or("off"))
            .map_err(|e| format!("--trace-sample: {e}"))?;
    let log_level =
        shbf::server::trace::log::Level::parse(flags.get("log-level").unwrap_or("info"))
            .map_err(|e| format!("--log-level: {e}"))?;
    let log_format =
        shbf::server::trace::log::Format::parse(flags.get("log-format").unwrap_or("text"))
            .map_err(|e| format!("--log-format: {e}"))?;

    let engine = Arc::new(Engine::new());
    if let Some(snapshot) = flags.get("load") {
        let n = engine
            .restore_from_snapshot(Path::new(snapshot))
            .map_err(|e| format!("loading {snapshot}: {e}"))?;
        println!("restored {n} namespaces from {snapshot}");
    }
    let transport = if evented {
        TransportKind::Evented
    } else {
        TransportKind::Threaded
    };
    let config = ServerConfig {
        max_connections: workers,
        transport,
        evented_workers: reactors,
        wal_dir,
        fsync,
        snapshot_every_ops,
        data_dir,
        replica_of,
        metrics_addr,
        slowlog_us,
        conn_idle_secs,
        shed_busy,
        failpoints_admin,
        trace_sample,
        log_level,
        log_format,
        ..ServerConfig::default()
    };
    let server = match flags.get("unix") {
        #[cfg(unix)]
        Some(path) => Server::bind_unix(path, engine, config)
            .map_err(|e| format!("binding unix:{path}: {e}"))?,
        #[cfg(not(unix))]
        Some(_) => return Err("--unix needs a UNIX platform".into()),
        None => Server::bind((bind, port), engine, config)
            .map_err(|e| format!("binding {bind}:{port}: {e}"))?,
    };
    let endpoint = server.endpoint().clone();
    let mode = match transport {
        TransportKind::Evented => "evented epoll transport",
        TransportKind::Threaded => "threaded transport",
    };
    println!("shbf-server listening on {endpoint} ({mode}, {workers} max connections); send SHUTDOWN to stop");
    if let Some(addr) = server.metrics_addr() {
        println!(
            "prometheus metrics at http://{addr}/metrics (traces at /trace, readiness at /healthz)"
        );
    }
    server.run().map_err(|e| format!("serving: {e}"))
}

fn cmd_client(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let host = flags.get("host").unwrap_or("127.0.0.1");
    let port: u16 = flags.get_parsed("port", 7878)?;
    let pipeline: usize = flags.get_parsed("pipeline", 1)?;
    if pipeline == 0 {
        return Err("--pipeline must be >= 1".into());
    }
    let timeout_ms: u64 = flags.get_parsed("timeout-ms", 0)?;
    let timeout = (timeout_ms > 0).then(|| std::time::Duration::from_millis(timeout_ms));
    let mut client = match flags.get("unix") {
        #[cfg(unix)]
        Some(path) => {
            Client::connect_unix(path).map_err(|e| format!("connecting unix:{path}: {e}"))?
        }
        #[cfg(not(unix))]
        Some(_) => return Err("--unix needs a UNIX platform".into()),
        None => match timeout {
            Some(t) => Client::connect_timeout((host, port), t)
                .map_err(|e| format!("connecting {host}:{port}: {e}"))?,
            None => Client::connect((host, port))
                .map_err(|e| format!("connecting {host}:{port}: {e}"))?,
        },
    };
    if timeout.is_some() {
        client
            .set_read_timeout(timeout)
            .map_err(|e| format!("setting read timeout: {e}"))?;
    }

    let print_reply = |lines: Vec<String>| {
        for line in lines {
            println!("{line}");
        }
    };

    if let Some(command) = flags.get("send") {
        // With a pipeline depth, `;` splits --send into a batch that goes
        // out in one write before any reply is read.
        let commands: Vec<&str> = if pipeline > 1 {
            command
                .split(';')
                .map(str::trim)
                .filter(|c| !c.is_empty())
                .collect()
        } else {
            vec![command]
        };
        let replies = client
            .send_pipelined(&commands)
            .map_err(|e| e.to_string())?;
        let failed = replies
            .iter()
            .any(|lines| lines.first().is_some_and(|l| l.starts_with('-')));
        for lines in replies {
            print_reply(lines);
        }
        return if failed {
            Err("server returned an error".into())
        } else {
            Ok(())
        };
    }

    // Line REPL: with --pipeline N, up to N request lines are written
    // before their replies are read (batches flush early on QUIT/SHUTDOWN
    // and at EOF), demonstrating the server's pipelined path from stdin.
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let mut batch: Vec<String> = Vec::new();
    let mut closing = false;
    loop {
        let mut flush_now = false;
        let mut eof = false;
        if !closing {
            if pipeline == 1 {
                print!("shbf> ");
                stdout.flush().ok();
            }
            let mut line = String::new();
            if stdin
                .lock()
                .read_line(&mut line)
                .map_err(|e| e.to_string())?
                == 0
            {
                eof = true;
            } else {
                let line = line.trim();
                if !line.is_empty() {
                    closing =
                        line.eq_ignore_ascii_case("quit") || line.eq_ignore_ascii_case("shutdown");
                    batch.push(line.to_string());
                }
            }
            flush_now = closing || eof || batch.len() >= pipeline;
        }
        if flush_now && !batch.is_empty() {
            match client.send_pipelined(&batch) {
                Ok(replies) => {
                    for lines in replies {
                        print_reply(lines);
                    }
                }
                Err(e) => return Err(format!("connection lost: {e}")),
            }
            batch.clear();
        }
        if closing || eof {
            return Ok(());
        }
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let path = flags.require("filter")?;
    match load_filter(path)? {
        AnyFilter::ShbfM(f) => {
            let (m, k, n) = (f.m() as f64, f.k() as f64, f.items() as f64);
            println!("kind:            ShBF_M");
            println!("m (logical):     {}", f.m());
            println!(
                "k:               {} ({} pairs + 1 offset hash)",
                f.k(),
                f.pairs()
            );
            println!("w-bar:           {}", f.w_bar());
            println!("items:           {}", f.items());
            println!("fill ratio:      {:.4}", f.fill_ratio());
            if f.items() > 0 {
                println!(
                    "theoretical FPR: {:.3e} (BF at same params: {:.3e})",
                    shbf_theory::fpr(m, n, k, f.w_bar() as f64),
                    bf_theory::fpr(m, n, k)
                );
            }
        }
        AnyFilter::Bf(f) => {
            println!("kind:            BF");
            println!("m:               {}", f.m());
            println!("k:               {}", f.k());
            println!("items:           {}", f.items());
            println!("fill ratio:      {:.4}", f.fill_ratio());
            if f.items() > 0 {
                println!(
                    "theoretical FPR: {:.3e}",
                    bf_theory::fpr(f.m() as f64, f.items() as f64, f.k() as f64)
                );
            }
        }
        AnyFilter::ShbfX(f) => {
            println!("kind:            ShBF_X");
            println!("m (logical):     {}", f.m());
            println!("k:               {}", f.k());
            println!("c (max count):   {}", f.c());
            println!("distinct items:  {}", f.n_distinct());
        }
    }
    Ok(())
}
