//! Quickstart: the three ShBF query types in one tour.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use shbf::core::{ShbfA, ShbfM, ShbfX};
use shbf::workloads::sets::{distinct_flows, AssociationPair};

fn main() {
    // ---------------------------------------------------------------- //
    // 1. Membership (ShBF_M): half the hashing & memory accesses of a   //
    //    Bloom filter at the same false-positive rate.                  //
    // ---------------------------------------------------------------- //
    let flows = distinct_flows(10_000, 42);
    let m = 14 * flows.len(); // ~14 bits/element
    let k = ShbfM::optimal_even_k(m, flows.len());
    let mut filter = ShbfM::new(m, k, 0xC0FFEE).unwrap();
    for f in &flows {
        filter.insert(&f.to_bytes());
    }
    println!(
        "[membership] m = {m} bits, k = {k}, {} flows inserted",
        flows.len()
    );
    assert!(filter.contains(&flows[0].to_bytes()));

    let strangers = distinct_flows(50_000, 777);
    let false_positives = strangers
        .iter()
        .filter(|f| !flows.contains(f) && filter.contains(&f.to_bytes()))
        .count();
    println!(
        "[membership] measured FPR ≈ {:.5} over {} non-members",
        false_positives as f64 / strangers.len() as f64,
        strangers.len()
    );

    // Filters serialize to a CRC-checked binary blob.
    let blob = filter.to_bytes();
    let restored = ShbfM::from_bytes(&blob).unwrap();
    assert!(restored.contains(&flows[0].to_bytes()));
    println!(
        "[membership] serialized {} bytes and restored\n",
        blob.len()
    );

    // ---------------------------------------------------------------- //
    // 2. Association (ShBF_A): which of two overlapping sets holds e?   //
    // ---------------------------------------------------------------- //
    let pair = AssociationPair::generate(5_000, 5_000, 1_250, 7);
    let assoc = ShbfA::builder()
        .hashes(10)
        .seed(0xBEEF)
        .build(&pair.s1_bytes(), &pair.s2_bytes())
        .unwrap();
    let probe = pair.both[0].to_bytes();
    println!(
        "[association] element in S1∩S2 answered: {:?}",
        assoc.query(&probe)
    );
    let probe = pair.s1_only[0].to_bytes();
    println!(
        "[association] element in S1−S2 answered: {:?}\n",
        assoc.query(&probe)
    );

    // ---------------------------------------------------------------- //
    // 3. Multiplicity (ShBF_×): how many times does e appear?           //
    //    The count is encoded in the bit offset — no counters stored.   //
    // ---------------------------------------------------------------- //
    let counted: Vec<([u8; 13], u64)> = flows
        .iter()
        .take(2_000)
        .enumerate()
        .map(|(i, f)| (f.to_bytes(), (i as u64 % 57) + 1))
        .collect();
    let bits = 2 * 14 * counted.len();
    let mult = ShbfX::build(&counted, bits, 8, 57, 0xF00D).unwrap();
    for (key, truth) in counted.iter().take(3) {
        let answer = mult.query(key);
        println!(
            "[multiplicity] true count {truth}, reported {}, candidates {:?}",
            answer.reported, answer.candidates
        );
        assert!(answer.reported >= *truth, "never under-reports");
    }
}
