//! Packet de-duplication at wire speed — the paper's motivating membership
//! scenario (§1.1: IP lookup / packet processing at line rate).
//!
//! A router keeps a "flows seen this epoch" filter. Because epochs rotate,
//! flows must also be *removable*, so the counting variant CShBF_M serves
//! updates while its SRAM-style bit snapshot serves the hot query path.
//!
//! ```text
//! cargo run --release --example packet_dedup
//! ```

use shbf::core::CShbfM;
use shbf::workloads::{SyntheticTrace, TraceConfig};

fn main() {
    // A scaled-down backbone trace: 40k distinct flows, 120k packets.
    let trace = SyntheticTrace::generate(&TraceConfig {
        distinct_flows: 40_000,
        total_packets: 120_000,
        zipf_theta: 0.99,
        seed: 2016,
    });
    println!(
        "trace: {} packets, {} distinct flows",
        trace.len(),
        trace.flows.len()
    );

    let mut seen = CShbfM::new(trace.flows.len() * 12, 8, 0xDED0).unwrap();
    // Ground truth for the demo: which flows the filter actually admitted.
    // A flow that false-positives on first contact is treated as a
    // duplicate and never inserted — the classic feedback caveat of
    // dedup-by-filter, made visible below.
    let mut admitted = std::collections::HashSet::new();
    let mut duplicate_packets = 0u64;
    for packet in &trace.packets {
        let key = packet.to_bytes();
        if seen.contains(&key) {
            duplicate_packets += 1;
        } else {
            seen.insert(&key);
            admitted.insert(*packet);
        }
    }
    println!(
        "first-seen flows:    {} (true distinct: {})",
        admitted.len(),
        trace.flows.len()
    );
    println!("duplicate packets:   {duplicate_packets}");
    let miss = trace.flows.len() - admitted.len();
    println!(
        "flows mistaken as already-seen (FPs during the run): {miss} ({:.4}%)",
        100.0 * miss as f64 / trace.flows.len() as f64
    );

    // Epoch rotation: age out the first half of the flows (deletion is why
    // the counting variant exists). Only admitted flows are deleted — a
    // counting filter cannot always detect a delete of a colliding
    // never-inserted key (it errors only when a counter is provably zero),
    // so the caller must not feed it unverified deletes.
    let half = trace.flows.len() / 2;
    let mut aged = 0;
    for flow in trace.flows.iter().take(half) {
        if admitted.remove(flow) {
            seen.delete(&flow.to_bytes()).unwrap();
            aged += 1;
        }
    }
    println!(
        "aged out {aged} flows; sync check: {} mismatches",
        seen.check_sync()
    );

    // A delete of a fresh random key is provably absent and is rejected.
    let stranger = shbf::workloads::FlowId {
        src_ip: 1,
        dst_ip: 2,
        src_port: 3,
        dst_port: 4,
        proto: 5,
    };
    assert!(seen.delete(&stranger.to_bytes()).is_err());
    println!("delete of a provably-absent flow rejected");

    // Every still-admitted flow must remain present: no false negatives.
    let survivors = admitted
        .iter()
        .filter(|f| seen.contains(&f.to_bytes()))
        .count();
    println!(
        "admitted flows still present: {survivors}/{} (must be all)",
        admitted.len()
    );
    assert_eq!(survivors, admitted.len());

    // Export the query-only snapshot (what would live in SRAM).
    let snapshot = seen.snapshot();
    println!(
        "SRAM snapshot: {} bits, fill ratio {:.3}",
        snapshot.m() + snapshot.w_bar() - 1,
        snapshot.fill_ratio()
    );
}
