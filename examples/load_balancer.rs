//! Gateway load balancing with association queries — the paper's §1.1
//! scenario: content is distributed over two servers, popular content is
//! replicated on both, and the gateway must route each request to a server
//! that has the data, ideally knowing when it may pick either.
//!
//! ```text
//! cargo run --release --example load_balancer
//! ```

use shbf::core::{AssociationAnswer, ShbfA};
use shbf::workloads::sets::AssociationPair;

fn main() {
    // 30k items per server, 7.5k replicated (popular) items.
    let catalog = AssociationPair::generate(30_000, 30_000, 7_500, 99);
    let gateway = ShbfA::builder()
        .hashes(10)
        .seed(0x10AD)
        .build(&catalog.s1_bytes(), &catalog.s2_bytes())
        .unwrap();
    println!(
        "gateway filter: {} bits for {} distinct items ({:.2} bits/item)",
        gateway.bit_size(),
        gateway.n_distinct(),
        gateway.bit_size() as f64 / gateway.n_distinct() as f64
    );

    let mut to_s1 = 0u64;
    let mut to_s2 = 0u64;
    let mut either = 0u64;
    let mut fallback = 0u64;
    let mut wrong = 0u64;

    let route = |answer: AssociationAnswer| -> &'static str {
        match answer {
            AssociationAnswer::OnlyS1 | AssociationAnswer::S1Unsure => "S1",
            AssociationAnswer::OnlyS2 | AssociationAnswer::S2Unsure => "S2",
            AssociationAnswer::Intersection => "either",
            // Ambiguous between the two difference regions, or no info:
            // the gateway must ask both servers.
            AssociationAnswer::EitherDifference | AssociationAnswer::Union => "broadcast",
            AssociationAnswer::NotInUnion => "miss",
        }
    };

    for (region, valid) in [
        (&catalog.s1_only, ["S1"].as_slice()),
        (&catalog.both, ["S1", "S2", "either"].as_slice()),
        (&catalog.s2_only, ["S2"].as_slice()),
    ] {
        for item in region.iter() {
            let decision = route(gateway.query(&item.to_bytes()));
            match decision {
                "S1" => to_s1 += 1,
                "S2" => to_s2 += 1,
                "either" => either += 1,
                _ => fallback += 1,
            }
            let ok = match decision {
                "either" => valid.contains(&"either"),
                "S1" | "S2" => valid.contains(&decision) || valid.contains(&"either"),
                _ => true, // broadcast is always safe, just slow
            };
            if !ok {
                wrong += 1;
            }
        }
    }

    let total = (catalog.n_distinct()) as f64;
    println!("routed to S1:        {to_s1}");
    println!("routed to S2:        {to_s2}");
    println!("either (replicated): {either} — free load-balancing choices");
    println!(
        "broadcast fallback:  {fallback} ({:.4}% of requests)",
        100.0 * fallback as f64 / total
    );
    println!("misroutes:           {wrong} (ShBF_A clear answers are never wrong)");
    assert_eq!(wrong, 0);
}
