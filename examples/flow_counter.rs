//! Per-flow packet counting — the paper's multiplicity scenario (§1.1:
//! "network measurement applications, such as measuring flow sizes").
//!
//! The updatable CShBF_× ingests a packet stream one packet at a time (each
//! arrival bumps the flow's multiplicity), then answers flow-size queries
//! from the compact bit array. A shifting count-min sketch ingests the same
//! stream for comparison.
//!
//! ```text
//! cargo run --release --example flow_counter
//! ```

use shbf::core::{CShbfX, ScmSketch};
use shbf::workloads::{SyntheticTrace, TraceConfig};

fn main() {
    const MAX_COUNT: usize = 57; // the paper's c

    let trace = SyntheticTrace::generate(&TraceConfig {
        distinct_flows: 20_000,
        total_packets: 120_000,
        zipf_theta: 1.05,
        seed: 31,
    });
    let truth = trace.flow_counts();
    println!(
        "trace: {} packets over {} flows, max flow size {}",
        trace.len(),
        trace.flows.len(),
        truth.iter().map(|(_, c)| *c).max().unwrap()
    );

    // CShBF_×: exact-table update policy (no false negatives, §5.3.2).
    let mut counter = CShbfX::new(trace.flows.len() * 18, 8, MAX_COUNT, 0xF10).unwrap();
    // SCM sketch with a comparable budget.
    let mut sketch = ScmSketch::new(8, trace.flows.len() / 2, 0xF10).unwrap();

    let mut capped = 0u64;
    for packet in &trace.packets {
        let key = packet.to_bytes();
        if counter.insert(&key).is_err() {
            capped += 1; // flow exceeded c; a real deployment would widen c
        }
        sketch.insert(&key);
    }
    println!("packets beyond the c = {MAX_COUNT} cap: {capped}");

    let mut exact_shbf = 0usize;
    let mut exact_scm = 0usize;
    let mut under_shbf = 0usize;
    for (flow, count) in &truth {
        let key = flow.to_bytes();
        let capped_truth = (*count).min(MAX_COUNT as u64);
        let reported = counter.query(&key).reported;
        if reported == capped_truth {
            exact_shbf += 1;
        }
        if reported < capped_truth {
            under_shbf += 1;
        }
        if sketch.estimate(&key) == capped_truth {
            exact_scm += 1;
        }
    }
    let n = truth.len() as f64;
    println!(
        "CShBF_X exact answers: {:.2}%",
        100.0 * exact_shbf as f64 / n
    );
    println!("CShBF_X under-reports: {under_shbf} (must be 0 — no false negatives)");
    println!(
        "SCM     exact answers: {:.2}%",
        100.0 * exact_scm as f64 / n
    );
    assert_eq!(under_shbf, 0);

    // Spot-check the top flow.
    let (top_flow, top_count) = truth.iter().max_by_key(|(_, c)| *c).unwrap();
    println!(
        "top flow {top_flow}: true {top_count}, CShBF_X {}, SCM {}",
        counter.query(&top_flow.to_bytes()).reported,
        sketch.estimate(&top_flow.to_bytes())
    );
}
