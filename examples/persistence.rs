//! Building a filter offline, shipping it as a file, and loading it in a
//! "reader" process — the CRC-checked binary format every structure in the
//! workspace shares.
//!
//! ```text
//! cargo run --release --example persistence
//! ```

use shbf::baselines::Bf;
use shbf::core::{ShbfM, ShbfX};
use shbf::workloads::sets::distinct_flows;

fn main() {
    let dir = std::env::temp_dir().join("shbf-persistence-example");
    std::fs::create_dir_all(&dir).unwrap();

    let flows = distinct_flows(5_000, 11);

    // Writer side: build and persist three structures.
    let mut shbf = ShbfM::new(70_000, 8, 0x5EED).unwrap();
    let mut bf = Bf::new(70_000, 8, 0x5EED).unwrap();
    for f in &flows {
        shbf.insert(&f.to_bytes());
        bf.insert(&f.to_bytes());
    }
    let counted: Vec<([u8; 13], u64)> = flows
        .iter()
        .enumerate()
        .map(|(i, f)| (f.to_bytes(), (i % 20 + 1) as u64))
        .collect();
    let shbf_x = ShbfX::build(&counted, 140_000, 8, 20, 0x5EED).unwrap();

    for (name, blob) in [
        ("membership.shbf", shbf.to_bytes()),
        ("membership.bf", bf.to_bytes()),
        ("counts.shbfx", shbf_x.to_bytes()),
    ] {
        let path = dir.join(name);
        std::fs::write(&path, &blob).unwrap();
        println!("wrote {} ({} bytes)", path.display(), blob.len());
    }

    // Reader side: load and verify.
    let shbf2 = ShbfM::from_bytes(&std::fs::read(dir.join("membership.shbf")).unwrap()).unwrap();
    let bf2 = Bf::from_bytes(&std::fs::read(dir.join("membership.bf")).unwrap()).unwrap();
    let shbf_x2 = ShbfX::from_bytes(&std::fs::read(dir.join("counts.shbfx")).unwrap()).unwrap();

    for f in flows.iter().take(1000) {
        assert!(shbf2.contains(&f.to_bytes()));
        assert!(bf2.contains(&f.to_bytes()));
    }
    for (key, truth) in counted.iter().take(1000) {
        assert!(shbf_x2.query(key).reported >= *truth);
    }
    println!(
        "reloaded filters answer identically — {} flows verified",
        1000
    );

    // Corruption is detected, not silently accepted.
    let mut corrupt = shbf.to_bytes();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x01;
    match ShbfM::from_bytes(&corrupt) {
        Err(e) => println!("corrupted blob rejected: {e}"),
        Ok(_) => unreachable!("corruption must be detected"),
    }

    std::fs::remove_dir_all(&dir).ok();
}
